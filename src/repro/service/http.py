"""Stdlib-only HTTP JSON API over :class:`repro.service.app.ModelService`.

``http.server`` is all we need: the heavy lifting (process-pool fan-out)
happens in the executor, so a :class:`ThreadingHTTPServer` front -- one
thread per connection -- comfortably serves interactive exploration
traffic without any third-party framework.

Routes (the versioned API)::

    GET  /v1/healthz        liveness JSON
    GET  /v1/metrics        Prometheus text exposition
    POST /v1/solve          one protocol, one or more sizes
    POST /v1/grid           full sweep (protocols x sharing x N)
    POST /v1/sweep          submit an async sharded sweep (no legacy alias)
    GET  /v1/sweep/{job_id} sweep progress counters
    POST /v1/verify         run the verification suite (no legacy alias)

``/v1`` errors are a structured envelope::

    {"error": {"code": "bad-request", "message": "...", "detail": ...}}

with 400 for malformed bodies or parameters (including unknown
top-level request fields, which ``/v1`` rejects), 404 for unknown
routes, 405 (plus an ``Allow`` header) for wrong methods, 413 for
oversized bodies and 500 for unexpected failures.

The legacy unversioned paths (``/solve``, ``/grid``, ``/healthz``,
``/metrics``) keep working with their historical lenient parsing and
flat error bodies (``{"error": "..."}``), but every legacy response
carries a ``Deprecation: true`` header and a ``Link`` to its ``/v1``
successor (RFC 8594 style); see ``docs/api.md`` for the deprecation
policy.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service.app import ModelService, ServiceError

_LOG = logging.getLogger(__name__)

#: Reject request bodies over this size before reading them fully.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: The current (only) API version prefix.
API_VERSION = "v1"

#: Endpoint -> allowed method; shared by routing and 405 ``Allow``.
_GET_ROUTES = ("/healthz", "/metrics")
_POST_ROUTES = ("/solve", "/grid", "/sweep", "/verify")
#: Endpoints that exist only under ``/v1`` (no legacy alias to honour).
_VERSIONED_ONLY = ("/sweep", "/verify")


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ModelService`."""

    daemon_threads = True

    def __init__(self, service: ModelService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        super().__init__((host, port), _ServiceRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- routing ---------------------------------------------------------

    def _route(self) -> tuple[str, bool]:
        """Split the request path into (endpoint, versioned)."""
        prefix = f"/{API_VERSION}"
        if self.path == prefix or self.path.startswith(prefix + "/"):
            return self.path[len(prefix):] or "/", True
        return self.path, False

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        endpoint, versioned = self._route()
        if endpoint == "/healthz":
            self._send_json(200, service.health(),
                            deprecated=not versioned)
        elif endpoint == "/metrics":
            self._send_text(200, service.metrics_text(),
                            content_type="text/plain; version=0.0.4; "
                                         "charset=utf-8",
                            deprecated=not versioned)
        elif versioned and endpoint.startswith("/sweep/"):
            job_id = endpoint[len("/sweep/"):]
            try:
                self._send_json(200, service.sweep_status(job_id))
            except ServiceError as exc:
                self._send_json(exc.status,
                                self._error_body(exc, versioned))
        elif (endpoint in _POST_ROUTES
              and (versioned or endpoint not in _VERSIONED_ONLY)):
            self._send_error(405, f"{self.path} requires POST", versioned,
                             deprecated=not versioned,
                             headers={"Allow": "POST"})
        else:
            self._send_error(404, f"unknown path {self.path!r}", versioned)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        endpoint, versioned = self._route()
        if endpoint in _VERSIONED_ONLY and not versioned:
            self._send_error(404, f"unknown path {self.path!r} "
                             f"(did you mean /{API_VERSION}{self.path}?)",
                             versioned)
            return
        if endpoint == "/solve":
            handler = service.solve
        elif endpoint == "/grid":
            handler = service.grid
        elif endpoint == "/sweep":
            handler = service.sweep
        elif endpoint == "/verify":
            handler = service.verify
        elif versioned and endpoint.startswith("/sweep/"):
            self._send_error(405, f"{self.path} requires GET", versioned,
                             headers={"Allow": "GET"})
            return
        elif endpoint in _GET_ROUTES:
            self._send_error(405, f"{self.path} requires GET", versioned,
                             deprecated=not versioned,
                             headers={"Allow": "GET"})
            return
        else:
            self._send_error(404, f"unknown path {self.path!r}", versioned)
            return
        try:
            payload = self._read_json_body()
            response = handler(payload, strict=versioned)
        except ServiceError as exc:
            self._send_json(exc.status, self._error_body(exc, versioned),
                            deprecated=not versioned)
        except Exception as exc:  # noqa: BLE001 - must answer the client
            _LOG.exception("unhandled error serving %s", self.path)
            self._send_json(
                500,
                self._error_body(
                    ServiceError(500, f"internal error: {exc}"), versioned),
                deprecated=not versioned)
        else:
            self._send_json(200, response, deprecated=not versioned)

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _error_body(exc: ServiceError, versioned: bool) -> dict[str, Any]:
        """The ``/v1`` envelope, or the historical flat legacy body."""
        if versioned:
            return {"error": {"code": exc.code, "message": exc.message,
                              "detail": exc.details}}
        body: dict[str, Any] = {"error": exc.message}
        if exc.details:
            body.update(exc.details)
        return body

    def _send_error(self, status: int, message: str, versioned: bool,
                    deprecated: bool = False,
                    headers: dict[str, str] | None = None) -> None:
        self._send_json(status,
                        self._error_body(ServiceError(status, message),
                                         versioned),
                        deprecated=deprecated, headers=headers)

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise ServiceError(400, "bad Content-Length header") from exc
        if length <= 0:
            raise ServiceError(400, "empty request body (expected JSON)")
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(400, "request body is not valid JSON: "
                                    f"{exc}") from exc

    def _send_json(self, status: int, payload: Any,
                   deprecated: bool = False,
                   headers: dict[str, str] | None = None) -> None:
        self._send_text(status, json.dumps(payload),
                        content_type="application/json",
                        deprecated=deprecated, headers=headers)

    def _send_text(self, status: int, body: str, content_type: str,
                   deprecated: bool = False,
                   headers: dict[str, str] | None = None) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if deprecated:
            # RFC 8594-style deprecation signalling on every legacy
            # (unversioned) response, pointing at the /v1 successor.
            self.send_header("Deprecation", "true")
            self.send_header(
                "Link", f"</{API_VERSION}{self.path}>; "
                        'rel="successor-version"')
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOG.debug("%s - %s", self.address_string(), format % args)


def start_server(service: ModelService, host: str = "127.0.0.1",
                 port: int = 0) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port).

    The caller drives it: ``serve_forever()`` to block (the CLI), or a
    background thread + ``shutdown()`` for tests and embedding.
    """
    return ServiceHTTPServer(service, host=host, port=port)
