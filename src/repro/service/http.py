"""Stdlib-only HTTP JSON API over :class:`repro.service.app.ModelService`.

``http.server`` is all we need: the heavy lifting (process-pool fan-out)
happens in the executor, so a :class:`ThreadingHTTPServer` front -- one
thread per connection -- comfortably serves interactive exploration
traffic without any third-party framework.

Routes::

    GET  /healthz   liveness JSON
    GET  /metrics   Prometheus text exposition
    POST /solve     one protocol, one or more sizes
    POST /grid      full sweep (protocols x sharing x N)

Errors are JSON: ``{"error": "..."}`` with a 400 for malformed bodies
or parameters, 404 for unknown routes, 405 for wrong methods and 500
for unexpected failures.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service.app import ModelService, ServiceError

_LOG = logging.getLogger(__name__)

#: Reject request bodies over this size before reading them fully.
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ModelService`."""

    daemon_threads = True

    def __init__(self, service: ModelService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        super().__init__((host, port), _ServiceRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/healthz":
            self._send_json(200, service.health())
        elif self.path == "/metrics":
            self._send_text(200, service.metrics_text(),
                            content_type="text/plain; version=0.0.4; "
                                         "charset=utf-8")
        elif self.path in ("/solve", "/grid"):
            self._send_json(405, {"error": f"{self.path} requires POST"})
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        service = self.server.service
        if self.path == "/solve":
            handler = service.solve
        elif self.path == "/grid":
            handler = service.grid
        elif self.path in ("/healthz", "/metrics"):
            self._send_json(405, {"error": f"{self.path} requires GET"})
            return
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_json_body()
            response = handler(payload)
        except ServiceError as exc:
            body: dict[str, Any] = {"error": exc.message}
            if exc.details:
                body.update(exc.details)
            self._send_json(exc.status, body)
        except Exception as exc:  # noqa: BLE001 - must answer the client
            _LOG.exception("unhandled error serving %s", self.path)
            self._send_json(500, {"error": f"internal error: {exc}"})
        else:
            self._send_json(200, response)

    # -- helpers ---------------------------------------------------------

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise ServiceError(400, "bad Content-Length header") from exc
        if length <= 0:
            raise ServiceError(400, "empty request body (expected JSON)")
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(400, "request body is not valid JSON: "
                                    f"{exc}") from exc

    def _send_json(self, status: int, payload: Any) -> None:
        self._send_text(status, json.dumps(payload),
                        content_type="application/json")

    def _send_text(self, status: int, body: str,
                   content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOG.debug("%s - %s", self.address_string(), format % args)


def start_server(service: ModelService, host: str = "127.0.0.1",
                 port: int = 0) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port).

    The caller drives it: ``serve_forever()`` to block (the CLI), or a
    background thread + ``shutdown()`` for tests and embedding.
    """
    return ServiceHTTPServer(service, host=host, port=port)
