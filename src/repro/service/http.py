"""Threaded stdlib HTTP front-end over :mod:`repro.service.router`.

``http.server`` is all we need for interactive exploration traffic: a
:class:`ThreadingHTTPServer` pins one thread per connection and hands
every request to the shared transport-agnostic router, so this server
and the asyncio front-end (:mod:`repro.service.aio`) expose exactly the
same consolidated ``/v1`` surface -- see :mod:`repro.service.router`
for the route table, the structured error envelope, and the 410 policy
for the retired legacy unversioned endpoints.

For high-concurrency ``/v1/solve`` traffic prefer the asyncio server
(``repro serve --async``): thread-per-connection tops out at a few
hundred concurrent clients, while the async front-end holds thousands
of connections and feeds the same :class:`repro.service.coalesce
.SolveCoalescer` without a thread each.  When the bound service has a
coalescer attached, this threaded server uses it too -- each handler
thread blocks on its batch future -- so the two fronts stay
byte-identical per response.
"""

from __future__ import annotations

import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.service.app import ModelService, ServiceError
from repro.service.router import (
    API_VERSION,
    MAX_BODY_BYTES,
    Response,
    error_response,
    handle,
)

_LOG = logging.getLogger(__name__)

__all__ = ["API_VERSION", "MAX_BODY_BYTES", "ServiceHTTPServer",
           "start_server"]


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ModelService`."""

    daemon_threads = True
    # Responses are written as one buffered flush (see the handler's
    # ``wbufsize``); without TCP_NODELAY the header/body send split
    # still interacts with delayed ACKs into ~40 ms response stalls.
    disable_nagle_algorithm = True

    def __init__(self, service: ModelService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        super().__init__((host, port), _ServiceRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"
    # Buffer the status line + headers + body into one send instead of
    # the default unbuffered write-per-line (a Nagle/delayed-ACK trap).
    wbufsize = 64 * 1024

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._respond(handle(self.server.service, "GET", self.path, None))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            body = self._read_body()
        except ServiceError as exc:
            self._respond(error_response(exc))
            return
        self._respond(handle(self.server.service, "POST", self.path, body))

    def _read_body(self) -> bytes:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError as exc:
            raise ServiceError(400, "bad Content-Length header") from exc
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        return self.rfile.read(length) if length > 0 else b""

    def _respond(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        _LOG.debug("%s - %s", self.address_string(), format % args)


def start_server(service: ModelService, host: str = "127.0.0.1",
                 port: int = 0) -> ServiceHTTPServer:
    """Bind a server (``port=0`` picks an ephemeral port).

    The caller drives it: ``serve_forever()`` to block (the CLI), or a
    background thread + ``shutdown()`` for tests and embedding.
    """
    return ServiceHTTPServer(service, host=host, port=port)
