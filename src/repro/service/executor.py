"""Parallel sweep executor: cache-aware, deterministic, fault-tolerant.

Turns a :class:`repro.analysis.grid.GridSpec` into an explicit list of
independent :class:`CellTask` work items, answers as many as possible
from the result cache, and fans the rest out over a
``concurrent.futures`` process pool.  Guarantees:

* **Deterministic ordering** -- results come back in task order (the
  seed's protocol -> sharing -> size -> (mva, sim) order), whatever the
  completion order of the pool, so CSV/JSON exports are byte-stable.
* **Per-cell failure isolation** -- a cell that cannot be solved
  becomes an error row (:class:`FailedCell` + ``GridCell.error``)
  instead of killing the sweep; every other cell completes exactly as
  it would in a clean run.  ``strict=True`` restores the historical
  raise-on-first-error behaviour.
* **Self-healing MVA cells** -- a non-converged fixed point is retried
  down the escalating damping ladder (warm-started); recoveries are
  counted in the summary and metrics.
* **Per-cell retry** -- simulation cells that raise are retried with a
  deterministically perturbed seed; the *effective* seed that produced
  the result is recorded in the cached value so a cache hit stays
  traceable.
* **Incremental cache flush** -- the disk store is rewritten after
  every fresh solve, so an interrupted sweep keeps its completed cells.
* **Graceful serial fallback** -- if the platform cannot spawn worker
  processes (sandboxes, restricted containers) the executor silently
  degrades to in-process serial evaluation with identical results.
* **Selectable MVA engine** -- ``engine="batch"`` routes a sweep's MVA
  cells through the vectorized :mod:`repro.core.batch` solver (one
  fixed point for the whole grid) and falls back to the scalar path if
  the batch engine fails wholesale; cache keys are engine-independent,
  so both engines share entries.
* **Chunked dispatch** -- jobs>1 sweeps default to the sharded sweep
  queue (:mod:`repro.sweepq`): cells are grouped into chunks, each
  chunk solved by one vectorized batch call inside a worker, results
  transported over shared memory instead of per-cell pickles.
  ``dispatch="cells"`` restores the per-cell process pool.

Workers return plain dicts (the ``GridCell`` row plus solve metadata),
which is also exactly what the cache persists, so a cache hit and a
fresh solve are indistinguishable to callers.  A worker never raises:
an unsolvable cell comes back as ``{"error": {...}}`` and is resolved
to an error row (or, under ``strict``, a :class:`CellFailedError`) on
the consumer side.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.grid import GridCell, GridSpec
from repro.core.model import CacheMVAModel
from repro.core.solver import FixedPointSolver, SolverError
from repro.protocols.modifications import ProtocolSpec
from repro.service.cache import ResultCache
from repro.service.keys import task_key
from repro.service.metrics import (
    DEFAULT_ITERATION_BUCKETS,
    MetricsRegistry,
)
from repro.sim.config import SimulationConfig
from repro.sim.system import SIM_ENGINES, simulate
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)

#: Seed perturbation between simulation retry attempts (prime so bumped
#: seeds never collide with the grid's own ``sim_seed + n`` spacing).
_RETRY_SEED_STRIDE = 100_003

#: The MVA evaluation backends an executor can run.
ENGINES = ("scalar", "batch")

#: How a parallel sweep is fanned out: ``auto`` routes jobs>1 through
#: the chunked sweep queue (:mod:`repro.sweepq`), ``cells`` keeps the
#: historical per-cell process pool, ``chunked`` forces the queue.
DISPATCH_MODES = ("auto", "cells", "chunked")


@dataclass(frozen=True)
class CellTask:
    """One independent model evaluation (everything a worker needs)."""

    protocol: ProtocolSpec
    sharing_label: str
    workload: WorkloadParameters
    n: int
    arch: ArchitectureParams = field(default_factory=ArchitectureParams)
    method: str = "mva"  # "mva" | "sim"
    sim_requests: int = 40_000
    sim_seed: int = 1234
    solver: FixedPointSolver = field(default_factory=FixedPointSolver)
    #: DES backend for ``method="sim"`` cells: ``"scalar"`` (the
    #: single-seed reference engine) or ``"vector"`` (the lockstep
    #: multi-replication engine; ``sim_requests`` is then *per
    #: replication* and the cell's CI is the across-replication band).
    sim_engine: str = "scalar"
    #: Replication count for ``sim_engine="vector"`` (seeds are
    #: ``sim_seed + r``); must be 1 on the scalar engine.
    sim_reps: int = 1

    def __post_init__(self) -> None:
        if self.method not in ("mva", "sim"):
            raise ValueError(f"method must be 'mva' or 'sim', got {self.method!r}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n!r}")
        if self.sim_engine not in SIM_ENGINES:
            raise ValueError(f"sim_engine must be one of {SIM_ENGINES}, "
                             f"got {self.sim_engine!r}")
        if self.sim_reps < 1:
            raise ValueError(f"sim_reps must be >= 1, got {self.sim_reps!r}")
        if self.sim_engine == "scalar" and self.sim_reps != 1:
            raise ValueError("sim_reps > 1 requires sim_engine='vector'")

    @property
    def key(self) -> str:
        """Content-addressed cache key of this evaluation (memoized:
        the executor, cache and sweep queue all ask repeatedly)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = task_key(self)
            object.__setattr__(self, "_key", cached)
        return cached


@dataclass(frozen=True)
class FailedCell:
    """The structured record of one cell that could not be solved."""

    index: int
    protocol: str
    sharing: str
    n_processors: int
    method: str
    error_type: str
    message: str
    attempts: int = 1
    #: Damping factors the MVA recovery ladder attempted before giving
    #: up (empty for simulation cells).
    ladder: tuple[float, ...] = ()

    def describe(self) -> str:
        """One line for stderr summaries and logs."""
        ladder = (f" after damping ladder {list(self.ladder)}"
                  if self.ladder else "")
        attempts = (f" ({self.attempts} attempts)"
                    if self.attempts > 1 else "")
        return (f"{self.protocol} {self.sharing} N={self.n_processors} "
                f"[{self.method}]: {self.error_type}: "
                f"{self.message}{ladder}{attempts}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "protocol": self.protocol,
            "sharing": self.sharing,
            "n_processors": self.n_processors,
            "method": self.method,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "ladder": list(self.ladder),
        }


class CellFailedError(RuntimeError):
    """Raised by a ``strict`` sweep on the first unsolvable cell."""

    def __init__(self, failure: FailedCell):
        super().__init__(failure.describe())
        self.failure = failure


def tasks_for_spec(spec: GridSpec,
                   workload_for: Callable[[SharingLevel], WorkloadParameters]
                   = appendix_a_workload) -> list[CellTask]:
    """Expand a grid spec into tasks in the canonical sweep order."""
    tasks: list[CellTask] = []
    for protocol in spec.protocols:
        for level in spec.sharing_levels:
            workload = workload_for(level)
            for n in spec.sizes:
                tasks.append(CellTask(
                    protocol=protocol, sharing_label=level.label,
                    workload=workload, n=n, arch=spec.arch))
                if spec.include_simulation:
                    tasks.append(CellTask(
                        protocol=protocol, sharing_label=level.label,
                        workload=workload, n=n, arch=spec.arch,
                        method="sim", sim_requests=spec.sim_requests,
                        sim_seed=spec.sim_seed + n,
                        sim_engine=spec.sim_engine,
                        sim_reps=spec.sim_reps))
    return tasks


def evaluate_task(task: CellTask) -> dict[str, Any]:
    """Solve one cell; the worker-side unit of the process pool.

    Returns the cache value: the ``GridCell`` row under ``"cell"`` plus
    solve metadata -- ``elapsed_s``; ``iterations``, ``damping``,
    ``recovered`` and ``warnings`` for MVA cells (the recovery-ladder
    diagnostics); ``effective_seed`` for simulation cells (the seed
    that actually produced the sample, which a retry may have bumped).
    """
    started = time.perf_counter()
    if task.method == "mva":
        model = CacheMVAModel(task.workload, task.protocol, arch=task.arch,
                              solver=task.solver)
        report = model.solve(task.n, recovery=True)
        cell = GridCell(
            protocol=task.protocol.label,
            sharing=task.sharing_label,
            n_processors=task.n,
            speedup=report.speedup,
            u_bus=report.u_bus,
            w_bus=report.w_bus,
            cycle_time=report.cycle_time,
            processing_power=report.processing_power,
        )
        return {
            "cell": cell.as_row(),
            "iterations": report.iterations,
            "damping": report.damping,
            "recovered": report.recovered,
            "warnings": [w.as_dict() for w in report.warnings],
            "elapsed_s": time.perf_counter() - started,
        }
    sim_config = SimulationConfig(
        n_processors=task.n, workload=task.workload,
        protocol=task.protocol, arch=task.arch,
        seed=task.sim_seed, measured_requests=task.sim_requests)
    if task.sim_engine == "scalar":
        result = simulate(sim_config)
    else:
        result = simulate(sim_config, engine=task.sim_engine,
                          reps=task.sim_reps)
    cell = GridCell(
        protocol=task.protocol.label,
        sharing=task.sharing_label,
        n_processors=task.n,
        speedup=result.speedup,
        u_bus=result.u_bus,
        w_bus=result.w_bus,
        cycle_time=result.mean_cycle_time,
        processing_power=result.processing_power,
        method="sim",
        sim_ci=result.speedup_ci_halfwidth,
    )
    value: dict[str, Any] = {
        "cell": cell.as_row(),
        "iterations": None,
        "effective_seed": task.sim_seed,
        "elapsed_s": time.perf_counter() - started,
    }
    if task.sim_engine != "scalar":
        value["sim_engine"] = task.sim_engine
        value["sim_reps"] = task.sim_reps
    return value


def evaluate_mva_batch(tasks: Sequence[CellTask]) -> list[dict[str, Any]]:
    """Solve many MVA cells with one vectorized fixed point per batch.

    The batched mirror of calling :func:`evaluate_task` on each cell:
    returns the same cache-value dicts, in task order, with the same
    per-cell failure isolation (an unsolvable cell becomes an
    ``{"error": {...}}`` payload carrying the scalar solver's message
    and ladder diagnostics).  Cells are grouped by solver settings --
    one :func:`repro.core.batch.solve_batch` call per distinct solver --
    so heterogeneous task lists stay correct.  ``elapsed_s`` is the
    batch wall-clock amortized over its cells (the quantity the latency
    histogram means under this engine).

    Derivation is grid-wise, not cell-wise: each (workload, protocol,
    arch) combination derives its model inputs once, the Appendix-B
    interference quantities are computed for all of its sizes in one
    pass (:meth:`repro.workload.derived.DerivedInputs
    .cache_interference_many`), and the coefficient vectors feed
    :meth:`repro.core.batch.BatchEquationSystem.from_arrays` directly
    -- no per-cell ``EquationSystem`` objects on this path.
    """
    started = time.perf_counter()
    import numpy as np

    from repro.core.batch import BatchEquationSystem, solve_batch

    count = len(tasks)
    values: list[dict[str, Any] | None] = [None] * count
    model_groups: dict[tuple[Any, ...], list[int]] = {}
    for index, task in enumerate(tasks):
        if task.method != "mva":
            raise ValueError("evaluate_mva_batch only accepts MVA cells, "
                             f"got {task.method!r}")
        model_key = (task.workload, task.protocol, task.arch)
        model_groups.setdefault(model_key, []).append(index)

    arrays = {name: np.empty(count)
              for name in BatchEquationSystem._FIELDS}
    labels: list[str] = [""] * count
    solver_groups: dict[FixedPointSolver, list[int]] = {}
    # Identity memo in front of the value-keyed grouping: task lists
    # usually share one solver instance, and hashing a dataclass per
    # cell costs more than the whole grouping pass.
    solver_memo: dict[int, list[int]] = {}
    for (workload, protocol, arch), indices in model_groups.items():
        try:
            model = CacheMVAModel(workload, protocol, arch=arch)
            inputs = model.inputs
            sizes = [tasks[i].n for i in indices]
            cells_ci = inputs.cache_interference_many(sizes)
        except Exception as exc:  # noqa: BLE001 - isolate bad cells
            elapsed = time.perf_counter() - started
            for index in indices:
                values[index] = _error_payload(tasks[index], exc, 1, elapsed)
            continue
        label = protocol.label
        base = {
            "tau": inputs.workload.tau,
            "t_supply": inputs.arch.t_supply,
            "p_local": inputs.p_local,
            "p_bc": inputs.p_bc,
            "p_rr": inputs.p_rr,
            "t_bc": inputs.t_bc,
            "t_read": inputs.t_read,
            "d_mem": inputs.arch.memory_latency,
            "memory_modules": inputs.arch.memory_modules,
            "memory_ops": inputs.memory_ops_per_request(),
        }
        for name, value in base.items():
            arrays[name][indices] = value
        arrays["n"][indices] = sizes
        arrays["p_interference"][indices] = [ci.p for ci in cells_ci]
        arrays["p_prime"][indices] = [ci.p_prime for ci in cells_ci]
        arrays["t_interference"][indices] = \
            [ci.t_interference for ci in cells_ci]
        for index in indices:
            labels[index] = label
            solver = tasks[index].solver
            group = solver_memo.get(id(solver))
            if group is None:
                group = solver_groups.setdefault(solver, [])
                solver_memo[id(solver)] = group
            group.append(index)

    for solver, indices in solver_groups.items():
        batch_system = BatchEquationSystem.from_arrays(
            {name: column[indices] for name, column in arrays.items()})
        batch = solve_batch(batch_system, solver=solver, traces=False)
        for position, index in enumerate(indices):
            task = tasks[index]
            state = batch.states[position]
            diagnostics = batch.diagnostics[position]
            if not diagnostics.converged:
                exc = SolverError(
                    "fixed point not reached after damping ladder "
                    f"{list(diagnostics.ladder)} ({diagnostics.iterations} "
                    "total sweeps, residual "
                    f"{diagnostics.final_residual:.3e})",
                    diagnostics=diagnostics)
                values[index] = _error_payload(task, exc, 1, 0.0)
                continue
            # The row dict is built directly (field-for-field what
            # ``GridCell.as_row()`` emits, with the measures computed
            # exactly like ``PerformanceReport``) -- the consumer side
            # turns it back into a ``GridCell`` like a cache hit.
            response = state.response
            cycle_time = response.total
            values[index] = {
                "cell": {
                    "protocol": labels[index],
                    "sharing": task.sharing_label,
                    "n_processors": task.n,
                    "speedup": (task.n * (response.tau + response.t_supply)
                                / cycle_time),
                    "u_bus": min(state.u_bus, 1.0),
                    "w_bus": state.w_bus,
                    "cycle_time": cycle_time,
                    "processing_power": task.n * response.tau / cycle_time,
                    "method": "mva",
                    "sim_ci": None,
                    "error": None,
                },
                "iterations": diagnostics.iterations,
                "damping": diagnostics.damping,
                "recovered": diagnostics.recovered,
                "warnings": [w.as_dict() for w in diagnostics.warnings],
                "elapsed_s": 0.0,
            }

    elapsed = time.perf_counter() - started
    share = elapsed / len(tasks) if tasks else 0.0
    for value in values:
        assert value is not None
        if "error" not in value:
            value["elapsed_s"] = share
        value["attempts"] = 1
    return values  # type: ignore[return-value]


def _error_payload(task: CellTask, exc: Exception, attempts: int,
                   elapsed_s: float) -> dict[str, Any]:
    """The structured error value a worker returns for a dead cell."""
    info: dict[str, Any] = {
        "type": type(exc).__name__,
        "message": str(exc),
        "method": task.method,
    }
    diagnostics = getattr(exc, "diagnostics", None)
    if diagnostics is not None:  # SolverError carries the ladder record
        info["ladder"] = list(diagnostics.ladder)
        info["iterations"] = diagnostics.iterations
        info["warnings"] = [w.as_dict() for w in diagnostics.warnings]
    return {"error": info, "attempts": attempts, "elapsed_s": elapsed_s}


def evaluate_with_retry(task: CellTask, retries: int) -> dict[str, Any]:
    """Worker entry point: never raises; failures become error payloads.

    Failing *simulation* cells are retried with a deterministically
    perturbed seed so a numerically pathological draw is not replayed
    verbatim; the value records the ``effective_seed`` that produced
    the returned sample.  MVA cells get exactly one attempt here --
    their retry story is the solver's damping ladder inside
    :func:`evaluate_task`, because they are pure functions of the task.

    A cell that exhausts its attempts returns ``{"error": {...}}``
    (type, message, attempts, and the solver's ladder diagnostics when
    available) instead of raising, so one dead cell cannot take down a
    process-pool sweep.
    """
    started = time.perf_counter()
    attempts = retries + 1 if task.method == "sim" else 1
    last_error: Exception | None = None
    for attempt in range(attempts):
        attempt_task = task
        if attempt > 0:
            attempt_task = CellTask(
                protocol=task.protocol, sharing_label=task.sharing_label,
                workload=task.workload, n=task.n, arch=task.arch,
                method=task.method, sim_requests=task.sim_requests,
                sim_seed=task.sim_seed + attempt * _RETRY_SEED_STRIDE,
                solver=task.solver, sim_engine=task.sim_engine,
                sim_reps=task.sim_reps)
        try:
            value = evaluate_task(attempt_task)
        except Exception as exc:  # noqa: BLE001 - isolate failing cells
            last_error = exc
            continue
        value["attempts"] = attempt + 1
        if attempt > 0:
            value["retried_after"] = repr(last_error)
        return value
    assert last_error is not None
    return _error_payload(task, last_error, attempts,
                          time.perf_counter() - started)


@dataclass
class ExecutorSummary:
    """What one sweep cost and where the answers came from."""

    total: int
    solved: int
    cache_hits: int
    retries: int
    wall_seconds: float
    jobs: int
    #: "serial", "chunked", "chunked-inprocess", "process-pool" or
    #: "serial-fallback" (optionally prefixed "batch+" when the sweep's
    #: MVA cells went through the in-process batch engine first).
    mode: str
    failed: int = 0
    recovered: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def line(self) -> str:
        """One-line human-readable summary (CLI stderr, bench output)."""
        extras = ""
        if self.recovered:
            extras += f", {self.recovered} recovered"
        if self.failed:
            extras += f", {self.failed} failed"
        return (f"{self.total} cells: {self.solved} solved, "
                f"{self.cache_hits} cached ({self.cache_hit_rate:.0%} hit "
                f"rate), {self.retries} retried{extras}; "
                f"{self.wall_seconds:.3f}s wall, jobs={self.jobs} "
                f"({self.mode})")


@dataclass(frozen=True)
class SweepResult:
    """Cells in task order plus per-cell provenance and the summary."""

    cells: list[GridCell]
    cached: list[bool]
    summary: ExecutorSummary
    #: Structured records of the cells that could not be solved (empty
    #: for a clean sweep); each also appears in ``cells`` as an error
    #: row at its task-order position.
    failures: list[FailedCell] = field(default_factory=list)
    #: Per-cell solve metadata in task order (everything the worker
    #: returned except the row itself: attempts, effective_seed,
    #: iterations, damping ladder diagnostics, ...).
    meta: list[dict[str, Any]] = field(default_factory=list)


def failed_cell(index: int, task: CellTask,
                value: dict[str, Any]) -> FailedCell:
    """The structured failure record for one error-payload value."""
    error = value["error"]
    return FailedCell(
        index=index,
        protocol=task.protocol.label,
        sharing=task.sharing_label,
        n_processors=task.n,
        method=task.method,
        error_type=str(error.get("type", "Exception")),
        message=str(error.get("message", "")),
        attempts=int(value.get("attempts", 1)),
        ladder=tuple(error.get("ladder", ())))


def collect_sweep_result(tasks: Sequence[CellTask],
                         values: dict[int, dict[str, Any]],
                         cached_flags: Sequence[bool], *,
                         wall_seconds: float, jobs: int,
                         mode: str) -> SweepResult:
    """Assemble a :class:`SweepResult` from per-cell worker values.

    The shared consumer-side tail of every dispatch path (serial, pool,
    chunked queue, and the request coalescer): error payloads become
    error rows plus :class:`FailedCell` records, everything else a
    :class:`GridCell`, in task order.
    """
    cells: list[GridCell] = []
    failures: list[FailedCell] = []
    meta: list[dict[str, Any]] = []
    for index, task in enumerate(tasks):
        value = values[index]
        meta.append({k: v for k, v in value.items() if k != "cell"})
        if value.get("error") is not None:
            failure = failed_cell(index, task, value)
            failures.append(failure)
            cells.append(GridCell.failed(
                protocol=task.protocol.label,
                sharing=task.sharing_label,
                n_processors=task.n,
                method=task.method,
                error=f"{failure.error_type}: {failure.message}"))
        else:
            cells.append(GridCell(**value["cell"]))

    fresh = [index for index in range(len(tasks)) if not cached_flags[index]]
    retries = sum(max(values[index].get("attempts", 1) - 1, 0)
                  for index in fresh)
    recovered = sum(1 for index in fresh if values[index].get("recovered"))
    summary = ExecutorSummary(
        total=len(tasks), solved=len(fresh),
        cache_hits=sum(cached_flags), retries=retries,
        wall_seconds=wall_seconds, jobs=jobs, mode=mode,
        failed=len(failures), recovered=recovered)
    return SweepResult(cells=cells, cached=list(cached_flags),
                       summary=summary, failures=failures, meta=meta)


def record_failure_metric(metrics: MetricsRegistry | None,
                          task: CellTask) -> None:
    """Count one dead cell (shared by the executor and the coalescer)."""
    if metrics is None:
        return
    metrics.counter(
        "repro_cells_failed_total",
        "Cells that exhausted every retry/recovery path.",
    ).labels(method=task.method).inc()


def record_solve_metrics(metrics: MetricsRegistry | None, task: CellTask,
                         value: dict[str, Any]) -> None:
    """Record one fresh solve (shared by the executor and the coalescer)."""
    if metrics is None:
        return
    metrics.counter(
        "repro_cells_solved_total",
        "Cells solved fresh (not served from cache).",
    ).labels(method=task.method).inc()
    metrics.histogram(
        "repro_solve_latency_seconds",
        "Per-cell solve wall time.",
    ).labels(method=task.method).observe(value.get("elapsed_s", 0.0))
    attempts = value.get("attempts", 1)
    if attempts > 1:
        metrics.counter(
            "repro_sim_retries_total",
            "Simulation cells that needed retry attempts.",
        ).inc(attempts - 1)
    if value.get("recovered"):
        metrics.counter(
            "repro_cells_recovered_total",
            "MVA cells rescued by the damping ladder.",
        ).inc()
    iterations = value.get("iterations")
    if iterations is not None:
        metrics.histogram(
            "repro_solver_iterations",
            "Fixed-point sweeps to convergence (MVA cells).",
            buckets=DEFAULT_ITERATION_BUCKETS,
        ).observe(iterations)


def record_solve_metrics_batch(
        metrics: MetricsRegistry | None,
        solved: Sequence[tuple[CellTask, dict[str, Any]]]) -> None:
    """Record a whole batch of fresh solves in one pass.

    Same series as :func:`record_solve_metrics` -- a coalesced cell is
    indistinguishable from an executor cell on a dashboard -- but the
    registry/label lookups are paid once per batch instead of once per
    cell, which matters on the coalescer's flusher thread where a batch
    is hundreds of cells.
    """
    if metrics is None or not solved:
        return
    solved_family = metrics.counter(
        "repro_cells_solved_total",
        "Cells solved fresh (not served from cache).")
    latency_family = metrics.histogram(
        "repro_solve_latency_seconds",
        "Per-cell solve wall time.")
    by_method: dict[str, int] = {}
    retries = 0
    recovered = 0
    iteration_values: list[float] = []
    latency_children: dict[str, Any] = {}
    for task, value in solved:
        method = task.method
        by_method[method] = by_method.get(method, 0) + 1
        child = latency_children.get(method)
        if child is None:
            child = latency_children[method] = (
                latency_family.labels(method=method))
        child.observe(value.get("elapsed_s", 0.0))
        retries += max(value.get("attempts", 1) - 1, 0)
        if value.get("recovered"):
            recovered += 1
        iterations = value.get("iterations")
        if iterations is not None:
            iteration_values.append(iterations)
    for method, count in by_method.items():
        solved_family.labels(method=method).inc(count)
    if retries:
        metrics.counter(
            "repro_sim_retries_total",
            "Simulation cells that needed retry attempts.").inc(retries)
    if recovered:
        metrics.counter(
            "repro_cells_recovered_total",
            "MVA cells rescued by the damping ladder.").inc(recovered)
    if iteration_values:
        iteration_hist = metrics.histogram(
            "repro_solver_iterations",
            "Fixed-point sweeps to convergence (MVA cells).",
            buckets=DEFAULT_ITERATION_BUCKETS).labels()
        for iterations in iteration_values:
            iteration_hist.observe(iterations)


class SweepExecutor:
    """Runs cell tasks through the cache and (optionally) a process pool.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) evaluates serially
        in-process with results identical to the historical
        ``run_grid`` loop.
    cache:
        Optional :class:`ResultCache`; flushed incrementally after
        every fresh solve (an interrupted sweep keeps its completed
        cells) and once more at the end of the sweep.
    metrics:
        Optional :class:`MetricsRegistry` fed with cache hit/miss
        counters, per-cell solve latency, MVA
        iterations-to-convergence histograms and failure/recovery
        counters.
    sim_retries:
        Extra attempts for failing simulation cells (per cell).
    strict:
        If True, the first unsolvable cell raises
        :class:`CellFailedError` (the historical behaviour).  The
        default isolates failures into per-cell error rows.
    engine:
        MVA evaluation backend: ``"scalar"`` (default; per-cell
        fixed-point solves, the historical path) or ``"batch"`` (all
        MVA cells of a sweep solved together by the vectorized
        :mod:`repro.core.batch` engine).  Simulation cells always take
        the scalar path.  Cache keys do not include the engine, so both
        engines share cache entries.
    dispatch:
        How jobs>1 sweeps fan out: ``"auto"`` (default) and
        ``"chunked"`` route through the :class:`repro.sweepq.SweepQueue`
        -- cells are sharded into chunks, each solved by one vectorized
        batch call in a worker, results returned over shared memory --
        while ``"cells"`` keeps the historical per-cell process pool.
        Rows are byte-identical either way (``tests/test_determinism``).
    chunk_size:
        Cells per chunk on the chunked path; ``None`` picks
        :func:`repro.sweepq.auto_chunk_size` per sweep.
    state_dir:
        Optional persistent directory for the chunked path's journal
        and cache-backed resume; ``None`` (default) uses an ephemeral
        queue per sweep.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 metrics: MetricsRegistry | None = None,
                 sim_retries: int = 2, strict: bool = False,
                 engine: str = "scalar", dispatch: str = "auto",
                 chunk_size: int | None = None,
                 state_dir: str | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if sim_retries < 0:
            raise ValueError(f"sim_retries must be >= 0, got {sim_retries!r}")
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}")
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}")
        self.jobs = jobs
        self.cache = cache
        self.metrics = metrics
        self.sim_retries = sim_retries
        self.strict = strict
        self.engine = engine
        self.dispatch = dispatch
        self.chunk_size = chunk_size
        self.state_dir = state_dir

    # -- public API ------------------------------------------------------

    def run_spec(self, spec: GridSpec,
                 workload_for: Callable[[SharingLevel], WorkloadParameters]
                 = appendix_a_workload) -> SweepResult:
        """Expand ``spec`` and run every cell."""
        return self.run(tasks_for_spec(spec, workload_for))

    def run(self, tasks: Sequence[CellTask]) -> SweepResult:
        """Evaluate ``tasks``; results come back in task order."""
        started = time.perf_counter()
        values: dict[int, dict[str, Any]] = {}
        cached_flags = [False] * len(tasks)
        pending: list[tuple[int, CellTask]] = []
        for index, task in enumerate(tasks):
            hit = self.cache.get(task.key) if self.cache is not None else None
            if hit is not None:
                values[index] = hit
                cached_flags[index] = True
            else:
                pending.append((index, task))
        self._count("repro_cache_hits_total",
                    "Sweep cells answered from the result cache.",
                    sum(cached_flags))
        self._count("repro_cache_misses_total",
                    "Sweep cells that required a fresh solve.", len(pending))

        batch_pending: list[tuple[int, CellTask]] = []
        pending_rest = pending
        if self.engine == "batch":
            batch_pending = [(i, t) for i, t in pending if t.method == "mva"]
            pending_rest = [(i, t) for i, t in pending if t.method != "mva"]

        mode = "serial"
        try:
            if batch_pending:
                self._run_batch(batch_pending, values)
                mode = "batch"
            if pending_rest:
                if self.jobs > 1 and len(pending_rest) > 1:
                    if self.dispatch in ("auto", "chunked"):
                        rest_mode = self._run_chunked(pending_rest, values)
                    else:
                        rest_mode = self._run_parallel(pending_rest, values)
                else:
                    for index, task in pending_rest:
                        values[index] = self._absorb(
                            task, index,
                            evaluate_with_retry(task, self.sim_retries))
                    rest_mode = "serial"
                mode = (f"batch+{rest_mode}" if batch_pending else rest_mode)
        finally:
            # Belt and braces: per-solve flushes already persisted every
            # completed cell, but make sure nothing dirty is left behind
            # even when a strict sweep raises mid-flight.
            if self.cache is not None:
                self.cache.flush()

        return collect_sweep_result(
            tasks, values, cached_flags,
            wall_seconds=time.perf_counter() - started,
            jobs=self.jobs, mode=mode)

    # -- internals -------------------------------------------------------

    def _run_batch(self, pending: list[tuple[int, CellTask]],
                   values: dict[int, dict[str, Any]]) -> None:
        """Solve the sweep's MVA cells in one vectorized batch.

        If the batched engine itself dies (not a per-cell failure --
        those come back as error payloads) the cells are re-run through
        the scalar path, so ``engine="batch"`` can never lose a sweep
        that scalar would have completed.
        """
        tasks = [task for _, task in pending]
        try:
            results = evaluate_mva_batch(tasks)
        except Exception:  # noqa: BLE001 - engine fallback, not cell errors
            results = [evaluate_with_retry(task, self.sim_retries)
                       for task in tasks]
        for (index, task), value in zip(pending, results):
            values[index] = self._absorb(task, index, value)

    def _run_chunked(self, pending: list[tuple[int, CellTask]],
                     values: dict[int, dict[str, Any]]) -> str:
        """Fan out over the sharded sweep queue (:mod:`repro.sweepq`).

        One ephemeral (or ``state_dir``-persistent) queue per sweep:
        cells are sharded into chunks, each chunk solved by a single
        vectorized batch-engine call inside a worker process, results
        returned through shared memory.  The queue writes fresh solves
        through the executor's cache itself, so ``_absorb`` here only
        records metrics and the strict-mode check.  If the queue dies
        wholesale, the historical per-cell pool finishes the sweep.

        Worker processes are capped at the machine's core count:
        surplus workers on a saturated machine only add fork, journal
        and supervision overhead, while fewer, wider chunks keep the
        vectorized batch solve at full width (the actual win)."""
        tasks = [task for _, task in pending]
        workers = max(1, min(self.jobs, os.cpu_count() or 1))
        queue = None
        try:
            from repro.sweepq import SweepQueue, auto_chunk_size
            from repro.sweepq.chunks import DEFAULT_CHUNK_SIZE, MVA_CHUNK_CAP

            cap = (DEFAULT_CHUNK_SIZE
                   if any(task.method != "mva" for task in tasks)
                   else MVA_CHUNK_CAP)
            queue = SweepQueue(
                state_dir=self.state_dir, cache=self.cache,
                metrics=self.metrics,
                chunk_size=self.chunk_size or auto_chunk_size(
                    len(tasks), workers, cap=cap),
                sim_retries=self.sim_retries)
            outcome = queue.run_tasks(tasks, workers=workers,
                                      precheck_cache=False)
        except CellFailedError:  # pragma: no cover - queue never raises it
            raise
        except Exception:  # noqa: BLE001 - queue fallback, not cell errors
            return self._run_parallel(pending, values)
        finally:
            if queue is not None:
                queue.close()
        for (index, task), value in zip(pending, outcome.values):
            values[index] = self._absorb(task, index, value, store=False)
        return outcome.mode

    def _run_parallel(self, pending: list[tuple[int, CellTask]],
                      values: dict[int, dict[str, Any]]) -> str:
        """Fan out over a process pool; degrade to serial if the platform
        cannot give us worker processes.  Completed cells land in
        ``values`` (and the cache) as they arrive, so even an aborted
        pool keeps its finished work."""
        tasks_by_index = dict((index, task) for index, task in pending)
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(evaluate_with_retry, task, self.sim_retries):
                    index for index, task in pending}
                try:
                    for future in as_completed(futures):
                        index = futures[future]
                        values[index] = self._absorb(
                            tasks_by_index[index], index, future.result())
                except CellFailedError:
                    for future in futures:
                        future.cancel()
                    raise
            return "process-pool"
        except (OSError, PermissionError, BrokenExecutor):
            remaining = [(index, task) for index, task in pending
                         if index not in values]
            for index, task in remaining:
                values[index] = self._absorb(
                    task, index, evaluate_with_retry(task, self.sim_retries))
            return "serial-fallback"

    def _absorb(self, task: CellTask, index: int,
                value: dict[str, Any],
                store: bool = True) -> dict[str, Any]:
        """Record one fresh result: metrics, cache (with an incremental
        flush), and the strict-mode failure check.  ``store=False``
        skips the cache write (the chunked queue already persisted the
        value itself)."""
        if value.get("error") is not None:
            self._record_failure(task)
            if self.strict:
                raise CellFailedError(self._failure(index, task, value))
            return value
        if store and self.cache is not None:
            self.cache.put(task.key, value)
            self.cache.flush()
        self._record_solve(task, value)
        return value

    @staticmethod
    def _failure(index: int, task: CellTask,
                 value: dict[str, Any]) -> FailedCell:
        return failed_cell(index, task, value)

    def _count(self, name: str, help_text: str, amount: int) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, help_text).inc(amount)

    def _record_failure(self, task: CellTask) -> None:
        record_failure_metric(self.metrics, task)

    def _record_solve(self, task: CellTask, value: dict[str, Any]) -> None:
        record_solve_metrics(self.metrics, task, value)
