"""Parallel sweep executor: cache-aware, deterministic, fault-tolerant.

Turns a :class:`repro.analysis.grid.GridSpec` into an explicit list of
independent :class:`CellTask` work items, answers as many as possible
from the result cache, and fans the rest out over a
``concurrent.futures`` process pool.  Guarantees:

* **Deterministic ordering** -- results come back in task order (the
  seed's protocol -> sharing -> size -> (mva, sim) order), whatever the
  completion order of the pool, so CSV/JSON exports are byte-stable.
* **Per-cell retry** -- simulation cells that raise are retried with a
  deterministically perturbed seed (MVA cells are deterministic, so a
  failure there is a real modelling error and propagates).
* **Graceful serial fallback** -- if the platform cannot spawn worker
  processes (sandboxes, restricted containers) the executor silently
  degrades to in-process serial evaluation with identical results.

Workers return plain dicts (the ``GridCell`` row plus solve metadata),
which is also exactly what the cache persists, so a cache hit and a
fresh solve are indistinguishable to callers.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.grid import GridCell, GridSpec
from repro.core.model import CacheMVAModel
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import ProtocolSpec
from repro.service.cache import ResultCache
from repro.service.keys import task_key
from repro.service.metrics import (
    DEFAULT_ITERATION_BUCKETS,
    MetricsRegistry,
)
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)

#: Seed perturbation between simulation retry attempts (prime so bumped
#: seeds never collide with the grid's own ``sim_seed + n`` spacing).
_RETRY_SEED_STRIDE = 100_003


@dataclass(frozen=True)
class CellTask:
    """One independent model evaluation (everything a worker needs)."""

    protocol: ProtocolSpec
    sharing_label: str
    workload: WorkloadParameters
    n: int
    arch: ArchitectureParams = field(default_factory=ArchitectureParams)
    method: str = "mva"  # "mva" | "sim"
    sim_requests: int = 40_000
    sim_seed: int = 1234
    solver: FixedPointSolver = field(default_factory=FixedPointSolver)

    def __post_init__(self) -> None:
        if self.method not in ("mva", "sim"):
            raise ValueError(f"method must be 'mva' or 'sim', got {self.method!r}")
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n!r}")

    @property
    def key(self) -> str:
        """Content-addressed cache key of this evaluation."""
        return task_key(self)


def tasks_for_spec(spec: GridSpec,
                   workload_for: Callable[[SharingLevel], WorkloadParameters]
                   = appendix_a_workload) -> list[CellTask]:
    """Expand a grid spec into tasks in the canonical sweep order."""
    tasks: list[CellTask] = []
    for protocol in spec.protocols:
        for level in spec.sharing_levels:
            workload = workload_for(level)
            for n in spec.sizes:
                tasks.append(CellTask(
                    protocol=protocol, sharing_label=level.label,
                    workload=workload, n=n, arch=spec.arch))
                if spec.include_simulation:
                    tasks.append(CellTask(
                        protocol=protocol, sharing_label=level.label,
                        workload=workload, n=n, arch=spec.arch,
                        method="sim", sim_requests=spec.sim_requests,
                        sim_seed=spec.sim_seed + n))
    return tasks


def evaluate_task(task: CellTask) -> dict[str, Any]:
    """Solve one cell; the worker-side unit of the process pool.

    Returns the cache value: the ``GridCell`` row under ``"cell"`` plus
    solve metadata (``elapsed_s``, ``iterations`` for MVA cells).
    """
    started = time.perf_counter()
    if task.method == "mva":
        model = CacheMVAModel(task.workload, task.protocol, arch=task.arch,
                              solver=task.solver)
        report = model.solve(task.n)
        cell = GridCell(
            protocol=task.protocol.label,
            sharing=task.sharing_label,
            n_processors=task.n,
            speedup=report.speedup,
            u_bus=report.u_bus,
            w_bus=report.w_bus,
            cycle_time=report.cycle_time,
            processing_power=report.processing_power,
        )
        iterations: int | None = report.iterations
    else:
        result = simulate(SimulationConfig(
            n_processors=task.n, workload=task.workload,
            protocol=task.protocol, arch=task.arch,
            seed=task.sim_seed, measured_requests=task.sim_requests))
        cell = GridCell(
            protocol=task.protocol.label,
            sharing=task.sharing_label,
            n_processors=task.n,
            speedup=result.speedup,
            u_bus=result.u_bus,
            w_bus=result.w_bus,
            cycle_time=result.mean_cycle_time,
            processing_power=result.processing_power,
            method="sim",
            sim_ci=result.speedup_ci_halfwidth,
        )
        iterations = None
    return {
        "cell": cell.as_row(),
        "iterations": iterations,
        "elapsed_s": time.perf_counter() - started,
    }


def evaluate_with_retry(task: CellTask, retries: int) -> dict[str, Any]:
    """Worker entry point: retry failing *simulation* cells.

    Each retry perturbs the seed deterministically so a numerically
    pathological draw is not replayed verbatim.  MVA cells never retry:
    they are pure functions of the task, so their failures are real.
    """
    attempts = retries + 1 if task.method == "sim" else 1
    last_error: Exception | None = None
    for attempt in range(attempts):
        attempt_task = task
        if attempt > 0:
            attempt_task = CellTask(
                protocol=task.protocol, sharing_label=task.sharing_label,
                workload=task.workload, n=task.n, arch=task.arch,
                method=task.method, sim_requests=task.sim_requests,
                sim_seed=task.sim_seed + attempt * _RETRY_SEED_STRIDE,
                solver=task.solver)
        try:
            value = evaluate_task(attempt_task)
        except Exception as exc:  # noqa: BLE001 - isolate flaky sim cells
            if attempt + 1 >= attempts:
                raise
            last_error = exc
            continue
        value["attempts"] = attempt + 1
        if last_error is not None:
            value["retried_after"] = repr(last_error)
        return value
    raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class ExecutorSummary:
    """What one sweep cost and where the answers came from."""

    total: int
    solved: int
    cache_hits: int
    retries: int
    wall_seconds: float
    jobs: int
    mode: str  # "serial" | "process-pool" | "serial-fallback"

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    def line(self) -> str:
        """One-line human-readable summary (CLI stderr, bench output)."""
        return (f"{self.total} cells: {self.solved} solved, "
                f"{self.cache_hits} cached ({self.cache_hit_rate:.0%} hit "
                f"rate), {self.retries} retried; {self.wall_seconds:.3f}s "
                f"wall, jobs={self.jobs} ({self.mode})")


@dataclass(frozen=True)
class SweepResult:
    """Cells in task order plus per-cell provenance and the summary."""

    cells: list[GridCell]
    cached: list[bool]
    summary: ExecutorSummary


class SweepExecutor:
    """Runs cell tasks through the cache and (optionally) a process pool.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) evaluates serially
        in-process with results identical to the historical
        ``run_grid`` loop.
    cache:
        Optional :class:`ResultCache`; flushed after every sweep.
    metrics:
        Optional :class:`MetricsRegistry` fed with cache hit/miss
        counters, per-cell solve latency and MVA
        iterations-to-convergence histograms.
    sim_retries:
        Extra attempts for failing simulation cells (per cell).
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 metrics: MetricsRegistry | None = None,
                 sim_retries: int = 2):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        if sim_retries < 0:
            raise ValueError(f"sim_retries must be >= 0, got {sim_retries!r}")
        self.jobs = jobs
        self.cache = cache
        self.metrics = metrics
        self.sim_retries = sim_retries

    # -- public API ------------------------------------------------------

    def run_spec(self, spec: GridSpec,
                 workload_for: Callable[[SharingLevel], WorkloadParameters]
                 = appendix_a_workload) -> SweepResult:
        """Expand ``spec`` and run every cell."""
        return self.run(tasks_for_spec(spec, workload_for))

    def run(self, tasks: Sequence[CellTask]) -> SweepResult:
        """Evaluate ``tasks``; results come back in task order."""
        started = time.perf_counter()
        values: dict[int, dict[str, Any]] = {}
        cached_flags = [False] * len(tasks)
        pending: list[tuple[int, CellTask]] = []
        for index, task in enumerate(tasks):
            hit = self.cache.get(task.key) if self.cache is not None else None
            if hit is not None:
                values[index] = hit
                cached_flags[index] = True
            else:
                pending.append((index, task))
        self._count("repro_cache_hits_total",
                    "Sweep cells answered from the result cache.",
                    sum(cached_flags))
        self._count("repro_cache_misses_total",
                    "Sweep cells that required a fresh solve.", len(pending))

        mode = "serial"
        if pending:
            if self.jobs > 1 and len(pending) > 1:
                solved, mode = self._run_parallel(pending)
            else:
                solved = {index: evaluate_with_retry(task, self.sim_retries)
                          for index, task in pending}
            values.update(solved)
            for index, task in pending:
                value = solved[index]
                if self.cache is not None:
                    self.cache.put(task.key, value)
                self._record_solve(task, value)
        if self.cache is not None:
            self.cache.flush()

        cells = [GridCell(**values[index]["cell"])
                 for index in range(len(tasks))]
        retries = sum(values[index].get("attempts", 1) - 1
                      for index, _ in pending)
        summary = ExecutorSummary(
            total=len(tasks), solved=len(pending),
            cache_hits=sum(cached_flags), retries=retries,
            wall_seconds=time.perf_counter() - started,
            jobs=self.jobs, mode=mode)
        return SweepResult(cells=cells, cached=cached_flags, summary=summary)

    # -- internals -------------------------------------------------------

    def _run_parallel(self, pending: list[tuple[int, CellTask]],
                      ) -> tuple[dict[int, dict[str, Any]], str]:
        """Fan out over a process pool; degrade to serial if the platform
        cannot give us worker processes."""
        solved: dict[int, dict[str, Any]] = {}
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                futures = {
                    pool.submit(evaluate_with_retry, task, self.sim_retries):
                    index for index, task in pending}
                for future in as_completed(futures):
                    solved[futures[future]] = future.result()
            return solved, "process-pool"
        except (OSError, PermissionError, BrokenExecutor):
            remaining = [(index, task) for index, task in pending
                         if index not in solved]
            for index, task in remaining:
                solved[index] = evaluate_with_retry(task, self.sim_retries)
            return solved, "serial-fallback"

    def _count(self, name: str, help_text: str, amount: int) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name, help_text).inc(amount)

    def _record_solve(self, task: CellTask, value: dict[str, Any]) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(
            "repro_cells_solved_total",
            "Cells solved fresh (not served from cache).",
        ).labels(method=task.method).inc()
        self.metrics.histogram(
            "repro_solve_latency_seconds",
            "Per-cell solve wall time.",
        ).labels(method=task.method).observe(value.get("elapsed_s", 0.0))
        attempts = value.get("attempts", 1)
        if attempts > 1:
            self.metrics.counter(
                "repro_sim_retries_total",
                "Simulation cells that needed retry attempts.",
            ).inc(attempts - 1)
        iterations = value.get("iterations")
        if iterations is not None:
            self.metrics.histogram(
                "repro_solver_iterations",
                "Fixed-point sweeps to convergence (MVA cells).",
                buckets=DEFAULT_ITERATION_BUCKETS,
            ).observe(iterations)
