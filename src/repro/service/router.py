"""Transport-agnostic request routing for the consolidated ``/v1`` API.

One routing table shared by both front-ends -- the threaded
:mod:`repro.service.http` server and the asyncio
:mod:`repro.service.aio` server -- so the API surface cannot drift
between transports.  :func:`handle` maps ``(method, path, body)`` onto
a :class:`ModelService` operation and returns a fully rendered
:class:`Response` (status, headers, bytes).

Routes::

    GET  /v1/healthz        liveness JSON
    GET  /v1/metrics        Prometheus text exposition
    GET  /v1/capabilities   engines, dispatch modes, coalescing, limits
    GET  /v1/jobs           every submitted async job with progress
    POST /v1/solve          one protocol, one or more sizes
    POST /v1/grid           full sweep (protocols x sharing x N)
    POST /v1/sweep          submit an async sharded sweep
    GET  /v1/sweep/{job_id} sweep progress counters
    POST /v1/verify         run the verification suite

Every error -- including on retired legacy paths -- is the structured
``/v1`` envelope::

    {"error": {"code": "...", "message": "...", "detail": ...}}

The legacy unversioned endpoints (``/solve``, ``/grid``, ``/healthz``,
``/metrics``) shipped ``Deprecation: true`` + ``Link`` successor
headers for two release cycles and are now **retired**: any request to
one answers ``410 Gone`` with code ``gone`` and the ``/v1`` successor
in ``error.detail.successor`` (plus the same ``Link`` header), so a
stale client gets a machine-actionable pointer instead of a silent 404.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from typing import Any

from repro.service.app import ModelService
from repro.service.schema import ServiceError

_LOG = logging.getLogger(__name__)

#: Reject request bodies over this size before reading them fully.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: The current (only) API version prefix.
API_VERSION = "v1"

#: Endpoint -> allowed method; shared by routing and 405 ``Allow``.
GET_ROUTES = ("/healthz", "/metrics", "/capabilities", "/jobs")
POST_ROUTES = ("/solve", "/grid", "/sweep", "/verify")

#: Retired unversioned path -> its ``/v1`` successor (410 Gone).
LEGACY_GONE = {
    "/healthz": "/v1/healthz",
    "/metrics": "/v1/metrics",
    "/solve": "/v1/solve",
    "/grid": "/v1/grid",
}

JSON_TYPE = "application/json"
METRICS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class Response:
    """One rendered HTTP response, transport-independent."""

    status: int
    body: bytes
    content_type: str = JSON_TYPE
    headers: tuple[tuple[str, str], ...] = field(default=())

    @classmethod
    def json(cls, status: int, payload: Any,
             headers: tuple[tuple[str, str], ...] = ()) -> "Response":
        # Compact separators: a 16-cell solve response is kilobytes of
        # rows, and the whitespace is pure encode/send overhead.
        return cls(status=status,
                   body=json.dumps(
                       payload, separators=(",", ":")).encode("utf-8"),
                   headers=headers)


def error_envelope(exc: ServiceError) -> dict[str, Any]:
    """The structured ``/v1`` error body."""
    return {"error": {"code": exc.code, "message": exc.message,
                      "detail": exc.details}}


def error_response(exc: ServiceError,
                   headers: tuple[tuple[str, str], ...] = ()) -> Response:
    return Response.json(exc.status, error_envelope(exc), headers=headers)


def legacy_gone(path: str) -> Response:
    """The 410 answer for a retired unversioned endpoint."""
    successor = LEGACY_GONE[path]
    exc = ServiceError(
        410,
        f"the unversioned endpoint {path!r} has been retired; "
        f"use {successor}",
        details={"successor": successor},
        code="gone")
    return error_response(
        exc, headers=(("Link", f"<{successor}>; rel=\"successor-version\""),))


def parse_json_body(body: bytes | None) -> Any:
    """Decode a request body exactly like both transports must."""
    if not body:
        raise ServiceError(400, "empty request body (expected JSON)")
    if len(body) > MAX_BODY_BYTES:
        raise ServiceError(413, "request body too large")
    try:
        return json.loads(body)
    except ValueError as exc:
        raise ServiceError(
            400, f"request body is not valid JSON: {exc}") from exc


def split_version(path: str) -> tuple[str, bool]:
    """Split ``path`` into (endpoint, versioned)."""
    prefix = f"/{API_VERSION}"
    if path == prefix or path.startswith(prefix + "/"):
        return path[len(prefix):] or "/", True
    return path, False


def handle(service: ModelService, method: str, path: str,
           body: bytes | None) -> Response:
    """Route one request; never raises (errors become envelopes)."""
    try:
        return _dispatch(service, method, path, body)
    except ServiceError as exc:
        return error_response(exc)
    except Exception as exc:  # noqa: BLE001 - must answer the client
        _LOG.exception("unhandled error serving %s %s", method, path)
        return error_response(
            ServiceError(500, f"internal error: {exc}"))


def _dispatch(service: ModelService, method: str, path: str,
              body: bytes | None) -> Response:
    endpoint, versioned = split_version(path)
    if not versioned:
        if endpoint in LEGACY_GONE:
            return legacy_gone(endpoint)
        if endpoint in POST_ROUTES:
            raise ServiceError(
                404, f"unknown path {path!r} "
                     f"(did you mean /{API_VERSION}{path}?)")
        raise ServiceError(404, f"unknown path {path!r}")

    if method == "GET":
        if endpoint == "/healthz":
            return Response.json(200, service.health())
        if endpoint == "/metrics":
            return Response(200, service.metrics_text().encode("utf-8"),
                            content_type=METRICS_TYPE)
        if endpoint == "/capabilities":
            return Response.json(200, service.capabilities())
        if endpoint == "/jobs":
            return Response.json(200, service.list_jobs())
        if endpoint.startswith("/sweep/"):
            return Response.json(
                200, service.sweep_status(endpoint[len("/sweep/"):]))
        if endpoint in POST_ROUTES:
            return _method_not_allowed(path, "POST")
        raise ServiceError(404, f"unknown path {path!r}")

    if method == "POST":
        handlers = {"/solve": service.solve, "/grid": service.grid,
                    "/sweep": service.sweep, "/verify": service.verify}
        handler = handlers.get(endpoint)
        if handler is not None:
            return Response.json(200,
                                 handler(parse_json_body(body), strict=True))
        if endpoint in GET_ROUTES or endpoint.startswith("/sweep/"):
            return _method_not_allowed(path, "GET")
        raise ServiceError(404, f"unknown path {path!r}")

    allowed = "GET" if endpoint in GET_ROUTES \
        or endpoint.startswith("/sweep/") else "POST"
    return _method_not_allowed(path, allowed, method=method)


def _method_not_allowed(path: str, allowed: str,
                        method: str | None = None) -> Response:
    detail = (f"{path} requires {allowed}" if method is None
              else f"method {method} not allowed on {path} (use {allowed})")
    return error_response(ServiceError(405, detail),
                          headers=(("Allow", allowed),))
