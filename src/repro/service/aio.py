"""Asyncio HTTP front-end: thousands of connections, no thread each.

``asyncio.start_server`` plus a minimal HTTP/1.1 request loop (request
line, headers, ``Content-Length`` body, keep-alive) -- no third-party
framework, exactly like the rest of the service stack.  Every route is
served by the shared :mod:`repro.service.router`, so the surface is
byte-identical to the threaded server's; the difference is purely how
requests wait:

* ``POST /v1/solve`` with a :class:`~repro.service.coalesce
  .SolveCoalescer` attached is handled *natively on the event loop*:
  the request's cells are submitted to the shared coalescing queue and
  the handler ``await``\\ s the batch futures (``asyncio.wrap_future``),
  so ten thousand in-flight solves cost ten thousand coroutines -- not
  ten thousand threads -- while the flusher stacks their cells into one
  vectorized ``solve_batch`` call.
* Everything else (grid, sweep, verify, and solve without a coalescer)
  runs in the default thread-pool executor via ``run_in_executor``, so
  a long sweep cannot stall the accept loop.

A client that disconnects mid-wait cancels only its own handler task;
its batch still solves (sibling waiters are untouched) and the result
still lands in the shared cache.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Any

from repro.service.app import ModelService
from repro.service.executor import collect_sweep_result
from repro.service.router import (
    MAX_BODY_BYTES,
    Response,
    ServiceError,
    error_response,
    handle,
    split_version,
)

_LOG = logging.getLogger(__name__)

#: Cap on the request line + each header line (anti-abuse, not a spec).
_MAX_LINE_BYTES = 16 * 1024

#: Cap on headers per request (http.client's default on the threaded
#: front-end, mirrored here so neither accepts unbounded header memory).
_MAX_HEADERS = 100

#: Idle keep-alive timeout between requests on one connection.
_KEEPALIVE_TIMEOUT = 120.0

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 410: "Gone",
            413: "Payload Too Large", 500: "Internal Server Error"}


class AsyncServiceServer:
    """One ``asyncio.start_server`` bound to one :class:`ModelService`.

    Use :func:`start_async_server` for the drive-from-a-thread wrapper
    (tests, benchmarks, the threaded CLI); inside an existing event
    loop, ``await server.start()`` / ``await server.aclose()`` directly.
    """

    def __init__(self, service: ModelService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        # The StreamReader buffer limit backs the per-line cap: readline
        # raises ValueError at the limit, which the request loop turns
        # into a 400 instead of the default 64 KiB silent ceiling.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=_KEEPALIVE_TIMEOUT)
                except asyncio.TimeoutError:
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # readline hit the StreamReader limit before our
                    # length check could: answer 400, don't leak an
                    # unhandled task exception.
                    await self._write(writer, error_response(
                        ServiceError(400, "request line too long")), False)
                    break
                if not line:
                    break  # clean EOF between requests
                keep_alive = await self._handle_request(line, reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(self, request_line: bytes,
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> bool:
        """Serve one request; returns whether to keep the connection."""
        if len(request_line) > _MAX_LINE_BYTES:
            await self._write(writer, error_response(
                ServiceError(400, "request line too long")), False)
            return False
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._write(writer, error_response(
                ServiceError(400, "malformed request line")), False)
            return False
        method, path, version = parts
        headers = await self._read_headers(reader)
        if headers is None:
            await self._write(writer, error_response(
                ServiceError(400, "malformed headers")), False)
            return False
        keep_alive = (version == "HTTP/1.1"
                      and headers.get("connection", "").lower() != "close")
        try:
            body = await self._read_body(reader, headers)
        except ServiceError as exc:
            await self._write(writer, error_response(exc), False)
            return False
        response = await self._respond(method, path, body)
        await self._write(writer, response, keep_alive)
        return keep_alive

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader
                            ) -> dict[str, str] | None:
        headers: dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ValueError, asyncio.LimitOverrunError):
                return None  # header line over the StreamReader limit
            if line in (b"\r\n", b"\n"):
                return headers
            if not line or len(line) > _MAX_LINE_BYTES:
                return None
            if len(headers) >= _MAX_HEADERS:
                return None
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    async def _read_body(reader: asyncio.StreamReader,
                         headers: dict[str, str]) -> bytes:
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as exc:
            raise ServiceError(400, "bad Content-Length header") from exc
        if length > MAX_BODY_BYTES:
            raise ServiceError(413, "request body too large")
        if length <= 0:
            return b""
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ServiceError(400, "truncated request body") from exc

    # -- dispatch --------------------------------------------------------

    async def _respond(self, method: str, path: str, body: bytes) -> Response:
        endpoint, versioned = split_version(path)
        if (method == "POST" and versioned and endpoint == "/solve"
                and self.service.coalescer is not None):
            return await self._solve_coalesced(body)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, handle, self.service, method, path, body)

    async def _solve_coalesced(self, body: bytes) -> Response:
        """The native path: submit cells, await the batch, render.

        Submission is non-blocking (cache lookup + queue append); the
        actual solve happens on the coalescer's flusher thread while
        this coroutine -- and thousands of siblings -- just await.
        """
        service = self.service
        coalescer = service.coalescer
        assert coalescer is not None
        try:
            from repro.service.router import parse_json_body
            payload = parse_json_body(body)
            request, tasks = service.solve_prepare(payload, strict=True)
            if not service.solve_uses_coalescer(request):
                # Explicit per-request engine override: the coalescer
                # always batches, so honour the request on the executor
                # path (off-loop, like every other blocking route).
                loop = asyncio.get_running_loop()
                return Response.json(200, await loop.run_in_executor(
                    None, lambda: service.solve(payload, strict=True)))
            started = time.perf_counter()
            future, cached_flags = coalescer.submit_request(tasks)
            values = (future.result() if future.done()
                      else await asyncio.wrap_future(future))
            result = collect_sweep_result(
                tasks, dict(enumerate(values)), cached_flags,
                wall_seconds=time.perf_counter() - started,
                jobs=1, mode="coalesced")
            return Response.json(200, service.solve_response(request, result))
        except ServiceError as exc:
            return error_response(exc)
        except asyncio.CancelledError:
            raise  # client disconnect: let the task die quietly
        except Exception as exc:  # noqa: BLE001 - must answer the client
            _LOG.exception("unhandled error in coalesced solve")
            return error_response(
                ServiceError(500, f"internal error: {exc}"))

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, response: Response,
                     keep_alive: bool) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [f"HTTP/1.1 {response.status} {reason}",
                f"Content-Type: {response.content_type}",
                f"Content-Length: {len(response.body)}"]
        head.extend(f"{name}: {value}" for name, value in response.headers)
        head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                     + response.body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client disconnected mid-response


class AsyncServerHandle:
    """A started async server plus the thread driving its event loop.

    The synchronous face tests, benchmarks and the CLI use: construct
    via :func:`start_async_server`, read ``.url``, call ``.shutdown()``.
    """

    def __init__(self, server: AsyncServiceServer,
                 loop: asyncio.AbstractEventLoop, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def service(self) -> ModelService:
        return self.server.service

    def shutdown(self, timeout: float = 10.0) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)


def start_async_server(service: ModelService, host: str = "127.0.0.1",
                       port: int = 0) -> AsyncServerHandle:
    """Boot an :class:`AsyncServiceServer` on a background event-loop
    thread and return once it is accepting connections."""
    loop = asyncio.new_event_loop()
    server = AsyncServiceServer(service, host=host, port=port)
    started: threading.Event = threading.Event()
    boot_error: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 - surfaced to caller
            boot_error.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="repro-aio-server",
                              daemon=True)
    thread.start()
    started.wait(timeout=10)
    if boot_error:
        raise boot_error[0]
    return AsyncServerHandle(server, loop, thread)


def serve_async(service: ModelService, host: str = "127.0.0.1",
                port: int = 0, announce: Any = None) -> None:
    """Run the async server in the *current* thread until interrupted
    (the ``repro serve --async`` entry point)."""

    async def _main() -> None:
        server = AsyncServiceServer(service, host=host, port=port)
        await server.start()
        if announce is not None:
            announce(server.url)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.aclose()

    asyncio.run(_main())
