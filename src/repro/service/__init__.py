"""repro.service -- the solver packaged as an evaluation service.

The paper's selling point is that the customized MVA is cheap enough
for *interactive* design-space exploration.  This package turns the
solver into infrastructure that can serve that exploration at scale:

* :mod:`repro.service.keys`     -- content-addressed cache keys over
  (workload, protocol, arch, N, solver settings);
* :mod:`repro.service.cache`    -- an LRU result cache with an optional
  JSON-on-disk persistent store;
* :mod:`repro.service.metrics`  -- counters and histograms (cache hit
  rate, solve latency, iterations-to-convergence) with a Prometheus
  text exposition;
* :mod:`repro.service.executor` -- a parallel sweep executor fanning
  grid cells over the chunked sweep queue (:mod:`repro.sweepq`) or the
  legacy per-cell process pool, with deterministic ordering, per-cell
  retry for simulation cells and graceful serial fallback;
* :mod:`repro.service.schema`   -- the typed request schemas
  (:class:`SolveRequest`, :class:`GridRequest`, :class:`SweepRequest`)
  shared by the versioned and legacy endpoints;
* :mod:`repro.service.app`      -- the transport-agnostic service
  facade (solve / grid / sweep / health / metrics);
* :mod:`repro.service.http`     -- a stdlib-only HTTP JSON API
  (``POST /v1/solve``, ``POST /v1/grid``, ``POST /v1/sweep`` +
  ``GET /v1/sweep/{job_id}``, ``GET /v1/healthz``, ``GET /v1/metrics``,
  plus the deprecated unversioned aliases) behind the ``repro serve``
  CLI subcommand.
"""

from repro.service.app import ModelService, ServiceError
from repro.service.cache import CacheStats, ResultCache
from repro.service.executor import (
    DISPATCH_MODES,
    ENGINES,
    CellFailedError,
    CellTask,
    ExecutorSummary,
    FailedCell,
    SweepExecutor,
    SweepResult,
    evaluate_mva_batch,
    tasks_for_spec,
)
from repro.service.schema import GridRequest, SolveRequest, SweepRequest
from repro.service.http import ServiceHTTPServer, start_server
from repro.service.keys import canonical_key, canonicalize, task_key
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "CacheStats",
    "CellFailedError",
    "CellTask",
    "Counter",
    "DISPATCH_MODES",
    "ENGINES",
    "ExecutorSummary",
    "FailedCell",
    "Gauge",
    "GridRequest",
    "Histogram",
    "MetricsRegistry",
    "ModelService",
    "ResultCache",
    "ServiceError",
    "ServiceHTTPServer",
    "SolveRequest",
    "SweepExecutor",
    "SweepRequest",
    "SweepResult",
    "canonical_key",
    "canonicalize",
    "evaluate_mva_batch",
    "start_server",
    "task_key",
    "tasks_for_spec",
]
