"""repro.service -- the solver packaged as an evaluation service.

The paper's selling point is that the customized MVA is cheap enough
for *interactive* design-space exploration.  This package turns the
solver into infrastructure that can serve that exploration at scale:

* :mod:`repro.service.keys`     -- content-addressed cache keys over
  (workload, protocol, arch, N, solver settings);
* :mod:`repro.service.cache`    -- an LRU result cache with an optional
  JSON-on-disk persistent store;
* :mod:`repro.service.metrics`  -- counters and histograms (cache hit
  rate, solve latency, iterations-to-convergence) with a Prometheus
  text exposition;
* :mod:`repro.service.executor` -- a parallel sweep executor fanning
  grid cells over the chunked sweep queue (:mod:`repro.sweepq`) or the
  legacy per-cell process pool, with deterministic ordering, per-cell
  retry for simulation cells and graceful serial fallback;
* :mod:`repro.service.schema`   -- the typed request schemas
  (:class:`SolveRequest`, :class:`GridRequest`, :class:`SweepRequest`)
  shared by the versioned and legacy endpoints;
* :mod:`repro.service.coalesce` -- the micro-batching request
  coalescer: concurrent ``/v1/solve`` cells are held for a ~2 ms window
  and solved by one vectorized batch call, with in-flight dedup and
  per-cell error fan-out;
* :mod:`repro.service.app`      -- the transport-agnostic service
  facade (solve / grid / sweep / jobs / capabilities / verify /
  health / metrics);
* :mod:`repro.service.router`   -- the shared route table and ``/v1``
  error envelope both HTTP transports dispatch through (including the
  410 ``gone`` answers on the retired legacy unversioned paths);
* :mod:`repro.service.http`     -- the threaded stdlib HTTP front-end
  behind ``repro serve``;
* :mod:`repro.service.aio`      -- the asyncio front-end behind
  ``repro serve --async``: thousands of concurrent connections without
  one thread each, awaiting the shared coalescer natively on the event
  loop.
"""

from repro.service.app import ModelService, ServiceError
from repro.service.cache import CacheStats, ResultCache
from repro.service.coalesce import SolveCoalescer
from repro.service.executor import (
    DISPATCH_MODES,
    ENGINES,
    CellFailedError,
    CellTask,
    ExecutorSummary,
    FailedCell,
    SweepExecutor,
    SweepResult,
    collect_sweep_result,
    evaluate_mva_batch,
    tasks_for_spec,
)
from repro.service.schema import GridRequest, SolveRequest, SweepRequest
from repro.service.aio import (
    AsyncServerHandle,
    AsyncServiceServer,
    serve_async,
    start_async_server,
)
from repro.service.http import ServiceHTTPServer, start_server
from repro.service.keys import canonical_key, canonicalize, task_key
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "AsyncServerHandle",
    "AsyncServiceServer",
    "CacheStats",
    "CellFailedError",
    "CellTask",
    "Counter",
    "DISPATCH_MODES",
    "ENGINES",
    "ExecutorSummary",
    "FailedCell",
    "Gauge",
    "GridRequest",
    "Histogram",
    "MetricsRegistry",
    "ModelService",
    "ResultCache",
    "ServiceError",
    "ServiceHTTPServer",
    "SolveCoalescer",
    "SolveRequest",
    "SweepExecutor",
    "SweepRequest",
    "SweepResult",
    "canonical_key",
    "canonicalize",
    "collect_sweep_result",
    "evaluate_mva_batch",
    "serve_async",
    "start_async_server",
    "start_server",
    "task_key",
    "tasks_for_spec",
]
