"""A small metrics registry: counters, gauges, histograms, Prometheus text.

No third-party client library -- the service only needs three things:
monotonically increasing counters (cache hits/misses, requests served),
cumulative histograms (solve latency, iterations-to-convergence, fed
from :class:`repro.core.solver.SolverDiagnostics`), and a plain-text
exposition for ``GET /metrics`` in the Prometheus format so any
standard scraper can consume it.

Metrics are families: ``registry.counter("x_total").labels(code="200")``
returns the child series for that label set; calling ``inc``/``observe``
on the family itself uses the label-free series.  All mutation is
thread-safe (the HTTP server is threaded).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Sequence
from typing import Any

#: Latency buckets (seconds): microseconds for MVA solves up to tens of
#: seconds for long simulation cells.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Iteration buckets: the paper converges "within 15 iterations"; the
#: tail covers damped pathological inputs.
DEFAULT_ITERATION_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 4, 5, 8, 10, 15, 20, 30, 50, 100, 200, 500)

#: Coalesced-batch size buckets (cells per flush): powers of two up to
#: the default ``max_batch`` and one bucket beyond it.
DEFAULT_BATCH_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def _format_value(value: float) -> str:
    """Prometheus-style number: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class Counter:
    """One monotonically increasing series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """One series that can go up, down, or be set outright."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """One cumulative histogram series with fixed upper bounds."""

    def __init__(self, buckets: Sequence[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +Inf bucket last
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound biased)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        target = q * self._count
        for bound, cumulative in self.cumulative_counts():
            if cumulative >= target:
                return bound
        return float("inf")  # pragma: no cover - cumulative ends at count


class _Family:
    """A named metric with zero or more labelled child series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self._children: dict[tuple[tuple[str, str], ...], Any] = {}
        self._lock = threading.Lock()

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, **labels: str) -> Any:
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    @property
    def _default(self) -> Any:
        return self.labels()

    def _series(self) -> list[tuple[tuple[tuple[str, str], ...], Any]]:
        with self._lock:
            return sorted(self._children.items())


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        """Sum over every labelled series."""
        return sum(child.value for _, child in self._series())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels, child in self._series() or [((), Counter())]:
            lines.append(f"{self.name}{_format_labels(labels)} "
                         f"{_format_value(child.value)}")
        return lines


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        """Sum over every labelled series."""
        return sum(child.value for _, child in self._series())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels, child in self._series() or [((), Gauge())]:
            lines.append(f"{self.name}{_format_labels(labels)} "
                         f"{_format_value(child.value)}")
        return lines


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float]) -> None:
        super().__init__(name, help_text)
        self._buckets = tuple(buckets)

    def _make_child(self) -> Histogram:
        return Histogram(self._buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def count(self) -> int:
        return sum(child.count for _, child in self._series())

    @property
    def sum(self) -> float:
        return sum(child.sum for _, child in self._series())

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for labels, child in self._series() or [((), Histogram(self._buckets))]:
            for bound, cumulative in child.cumulative_counts():
                le = "+Inf" if bound == float("inf") else _format_value(bound)
                lines.append(f"{self.name}_bucket"
                             f"{_format_labels(labels, (('le', le),))} "
                             f"{cumulative}")
            lines.append(f"{self.name}_sum{_format_labels(labels)} "
                         f"{_format_value(child.sum)}")
            lines.append(f"{self.name}_count{_format_labels(labels)} "
                         f"{child.count}")
        return lines


class MetricsRegistry:
    """Create-or-get families by name; render the whole exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def counter(self, name: str, help_text: str = "") -> CounterFamily:
        return self._family(CounterFamily, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> GaugeFamily:
        return self._family(GaugeFamily, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  ) -> HistogramFamily:
        return self._family(HistogramFamily, name, help_text, buckets)

    def _family(self, cls: type, name: str, help_text: str,
                *args: Any) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help_text, *args)
                self._families[name] = family
            elif not isinstance(family, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}")
            return family

    def render(self) -> str:
        """The Prometheus text exposition (version 0.0.4)."""
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, float | int]:
        """Flat {name: total} view for programmatic assertions."""
        with self._lock:
            families = dict(self._families)
        out: dict[str, float | int] = {}
        for name, family in sorted(families.items()):
            if isinstance(family, (CounterFamily, GaugeFamily)):
                out[name] = family.value
            elif isinstance(family, HistogramFamily):
                out[f"{name}_count"] = family.count
                out[f"{name}_sum"] = family.sum
        return out
