"""Transport-agnostic model-evaluation service facade.

:class:`ModelService` owns one cache, one metrics registry and one
executor configuration, and exposes the four operations the HTTP layer
(and any future transport) maps onto:

* :meth:`solve`   -- one or more MVA solutions for a named protocol;
* :meth:`grid`    -- a full (protocols x sharing x N) sweep;
* :meth:`health`  -- liveness payload;
* :meth:`metrics_text` -- the Prometheus exposition.

All request parsing raises :class:`ServiceError` with an HTTP-ish
status code, so transports translate errors uniformly.
"""

from __future__ import annotations

import time
from typing import Any

from repro import __version__
from repro.analysis.grid import GridSpec
from repro.protocols.family import PROTOCOLS
from repro.protocols.modifications import ProtocolSpec, parse_mods
from repro.service.cache import ResultCache
from repro.service.executor import CellTask, SweepExecutor
from repro.service.metrics import MetricsRegistry
from repro.workload.parameters import (
    ArchitectureParams,
    SharingLevel,
    WorkloadParameters,
    appendix_a_workload,
)

_SHARING_BY_NAME = {
    "1": SharingLevel.ONE_PERCENT,
    "5": SharingLevel.FIVE_PERCENT,
    "20": SharingLevel.TWENTY_PERCENT,
}

#: POST /grid sweeps are bounded so one request cannot monopolise the
#: service (raise via ``max_grid_cells`` for trusted deployments).
DEFAULT_MAX_GRID_CELLS = 4096


class ServiceError(Exception):
    """A client-visible request failure with an HTTP status code.

    ``details`` (optional) is merged into the JSON error body, so a
    total sweep failure can still report its per-cell failure records.
    """

    def __init__(self, status: int, message: str,
                 details: dict[str, Any] | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.details = details


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ServiceError(400, message)


def _parse_protocol(value: Any) -> ProtocolSpec:
    _require(isinstance(value, str), "'protocol' must be a string "
             "(a named protocol or a modification list like '1,4')")
    name = value.strip().lower()
    if name in PROTOCOLS:
        return PROTOCOLS[name]
    try:
        return parse_mods(value)
    except ValueError as exc:
        raise ServiceError(400, f"unknown protocol {value!r}: {exc}") from exc


def _parse_sharing(value: Any) -> SharingLevel:
    key = str(value).strip().rstrip("%")
    level = _SHARING_BY_NAME.get(key)
    _require(level is not None, f"unknown sharing level {value!r} "
             f"(expected one of {sorted(_SHARING_BY_NAME)})")
    assert level is not None
    return level


def _parse_sizes(value: Any, field: str) -> list[int]:
    if isinstance(value, int) and not isinstance(value, bool):
        value = [value]
    _require(isinstance(value, list) and value
             and all(isinstance(n, int) and not isinstance(n, bool)
                     and n >= 1 for n in value),
             f"{field!r} must be a positive integer or a non-empty "
             "list of positive integers")
    return list(value)


def _parse_overrides(payload: dict[str, Any], key: str,
                     base: Any, cls: type) -> Any:
    """Apply a JSON object of field overrides to a frozen dataclass."""
    overrides = payload.get(key)
    if overrides is None:
        return base
    _require(isinstance(overrides, dict),
             f"{key!r} must be an object of field overrides")
    try:
        return base.replace(**overrides)
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, f"bad {key!r} overrides: {exc}") from exc


class ModelService:
    """One cache + metrics + executor configuration behind the API."""

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1,
                 metrics: MetricsRegistry | None = None,
                 max_grid_cells: int = DEFAULT_MAX_GRID_CELLS):
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.jobs = jobs
        self.max_grid_cells = max_grid_cells
        self.started_at = time.time()

    def _executor(self, jobs: int | None = None) -> SweepExecutor:
        return SweepExecutor(jobs=jobs if jobs is not None else self.jobs,
                             cache=self.cache, metrics=self.metrics)

    # -- operations ------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness payload for ``GET /healthz``."""
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "cache_entries": len(self.cache),
            "cache_hit_rate": round(self.cache.stats.hit_rate, 6),
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics``."""
        return self.metrics.render()

    def solve(self, payload: Any) -> dict[str, Any]:
        """Evaluate the MVA for one protocol at one or more sizes.

        Request schema (JSON object)::

            {"protocol": "berkeley" | "1,4",   # required
             "n": 10 | [2, 6, 10],             # required
             "sharing": "5",                   # optional, default "5"
             "workload": {"tau": 3.0, ...},    # optional field overrides
             "arch": {"block_size": 8, ...}}   # optional field overrides
        """
        _require(isinstance(payload, dict), "request body must be a JSON object")
        _require("protocol" in payload, "missing required field 'protocol'")
        _require("n" in payload, "missing required field 'n'")
        protocol = _parse_protocol(payload["protocol"])
        sizes = _parse_sizes(payload["n"], "n")
        level = _parse_sharing(payload.get("sharing", "5"))
        workload: WorkloadParameters = _parse_overrides(
            payload, "workload", appendix_a_workload(level),
            WorkloadParameters)
        arch: ArchitectureParams = _parse_overrides(
            payload, "arch", ArchitectureParams(), ArchitectureParams)

        tasks = [CellTask(protocol=protocol, sharing_label=level.label,
                          workload=workload, n=n, arch=arch)
                 for n in sizes]
        result = self._executor(jobs=1).run(tasks)
        self._reject_total_failure(result)
        return {
            "protocol": protocol.label,
            "sharing": level.label,
            "results": self._cell_rows(result),
            "failures": [f.as_dict() for f in result.failures],
            "summary": self._summary_dict(result.summary),
        }

    def grid(self, payload: Any) -> dict[str, Any]:
        """Run a sweep; the HTTP face of ``repro grid``.

        Request schema (JSON object)::

            {"protocols": ["write-once", "1,4"],  # required
             "n": [2, 4, 8],                      # required
             "sharing": ["1", "5"],               # optional, default all
             "simulate": false,                   # optional
             "requests": 40000,                   # optional (simulate)
             "seed": 1234,                        # optional (simulate)
             "jobs": 4}                           # optional worker count
        """
        _require(isinstance(payload, dict), "request body must be a JSON object")
        _require("protocols" in payload, "missing required field 'protocols'")
        _require("n" in payload, "missing required field 'n'")
        raw_protocols = payload["protocols"]
        _require(isinstance(raw_protocols, list) and raw_protocols,
                 "'protocols' must be a non-empty list")
        protocols = [_parse_protocol(item) for item in raw_protocols]
        sizes = _parse_sizes(payload["n"], "n")
        raw_sharing = payload.get("sharing")
        if raw_sharing is None:
            levels = list(SharingLevel)
        else:
            _require(isinstance(raw_sharing, list) and raw_sharing,
                     "'sharing' must be a non-empty list")
            levels = [_parse_sharing(item) for item in raw_sharing]
        simulate = bool(payload.get("simulate", False))
        jobs = payload.get("jobs")
        if jobs is not None:
            _require(isinstance(jobs, int) and not isinstance(jobs, bool)
                     and jobs >= 1, "'jobs' must be a positive integer")

        cell_count = (len(protocols) * len(levels) * len(sizes)
                      * (2 if simulate else 1))
        _require(cell_count <= self.max_grid_cells,
                 f"grid of {cell_count} cells exceeds the per-request "
                 f"limit of {self.max_grid_cells}")

        spec = GridSpec(
            protocols=protocols, sizes=sizes, sharing_levels=levels,
            include_simulation=simulate,
            sim_requests=int(payload.get("requests", 40_000)),
            sim_seed=int(payload.get("seed", 1234)))
        result = self._executor(jobs=jobs).run_spec(spec)
        self._reject_total_failure(result)
        return {
            "cells": self._cell_rows(result),
            "failures": [f.as_dict() for f in result.failures],
            "summary": self._summary_dict(result.summary),
        }

    # -- response assembly -----------------------------------------------

    @staticmethod
    def _cell_rows(result: Any) -> list[dict[str, Any]]:
        """Per-cell rows with status: values, ``cached`` flag, ``error``
        for failed cells, and solve provenance (``attempts`` /
        ``effective_seed``) where it differs from the default."""
        rows = []
        for value, was_cached, meta in zip(result.cells, result.cached,
                                           result.meta):
            row = dict(value.as_row(), cached=was_cached,
                       status="error" if value.error else "ok")
            if meta.get("attempts", 1) > 1:
                row["attempts"] = meta["attempts"]
            if meta.get("effective_seed") is not None:
                row["effective_seed"] = meta["effective_seed"]
            if meta.get("recovered"):
                row["recovered"] = True
                row["damping"] = meta.get("damping")
            rows.append(row)
        return rows

    @staticmethod
    def _reject_total_failure(result: Any) -> None:
        """Per-cell failures are part of a 200 response; only a sweep
        with *no* surviving cell is a request-level error."""
        summary = result.summary
        if summary.total and summary.failed == summary.total:
            raise ServiceError(
                500, f"all {summary.total} cells failed",
                details={"failures": [f.as_dict()
                                      for f in result.failures]})

    @staticmethod
    def _summary_dict(summary: Any) -> dict[str, Any]:
        return {
            "total": summary.total,
            "solved": summary.solved,
            "cache_hits": summary.cache_hits,
            "cache_hit_rate": round(summary.cache_hit_rate, 6),
            "retries": summary.retries,
            "failed": summary.failed,
            "recovered": summary.recovered,
            "wall_seconds": round(summary.wall_seconds, 6),
            "jobs": summary.jobs,
            "mode": summary.mode,
        }
