"""Transport-agnostic model-evaluation service facade.

:class:`ModelService` owns one cache, one metrics registry and one
executor configuration, and exposes the four operations the HTTP layer
(and any future transport) maps onto:

* :meth:`solve`   -- one or more MVA solutions for a named protocol;
* :meth:`grid`    -- a full (protocols x sharing x N) sweep;
* :meth:`sweep`   -- submit an asynchronous sharded sweep (``/v1``);
* :meth:`sweep_status` -- poll a submitted sweep's progress counters;
* :meth:`verify`  -- the in-process verification suite (``/v1`` only);
* :meth:`health`  -- liveness payload;
* :meth:`metrics_text` -- the Prometheus exposition.

Request bodies are parsed by the typed schemas in
:mod:`repro.service.schema` (shared by the ``/v1`` and legacy
endpoints); parsing raises :class:`ServiceError` with an HTTP-ish
status code and a stable error ``code``, so transports translate
errors uniformly.  ``strict=True`` -- the ``/v1`` behaviour --
additionally rejects unknown top-level request fields.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro import __version__
from repro.service.cache import ResultCache
from repro.service.coalesce import SolveCoalescer
from repro.service.executor import (
    DISPATCH_MODES,
    ENGINES,
    CellTask,
    SweepExecutor,
    collect_sweep_result,
    tasks_for_spec,
)
from repro.service.keys import prime_task_keys
from repro.service.metrics import MetricsRegistry
from repro.service.schema import (
    GridRequest,
    ServiceError,
    SolveRequest,
    SweepRequest,
    VerifyRequest,
    require,
)

#: POST /grid sweeps are bounded so one request cannot monopolise the
#: service (raise via ``max_grid_cells`` for trusted deployments).
DEFAULT_MAX_GRID_CELLS = 4096


@dataclass
class _SweepJob:
    """One submitted async sweep and its background runner state."""

    job_id: str
    workers: int
    submitted_at: float
    state: str = "running"  # "running" | "done" | "failed"
    error: str | None = None
    outcome: Any = None
    thread: threading.Thread | None = field(default=None, repr=False)


class ModelService:
    """One cache + metrics + executor configuration behind the API.

    ``engine`` is the default MVA backend (``"scalar"`` or
    ``"batch"``); individual requests can override it with their own
    ``engine`` field.  Cache keys are engine-independent, so switching
    engines keeps every cached cell valid.
    """

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1,
                 metrics: MetricsRegistry | None = None,
                 max_grid_cells: int = DEFAULT_MAX_GRID_CELLS,
                 engine: str = "scalar",
                 sweep_state_dir: str | None = None,
                 coalescer: SolveCoalescer | None = None):
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}")
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.jobs = jobs
        self.max_grid_cells = max_grid_cells
        self.engine = engine
        self.sweep_state_dir = sweep_state_dir
        self.coalescer = coalescer
        self.started_at = time.time()
        self._sweep_queue: Any = None
        self._sweep_jobs: dict[str, _SweepJob] = {}
        self._sweep_lock = threading.Lock()

    @classmethod
    def with_coalescer(cls, cache: ResultCache | None = None,
                       window_ms: float | None = None,
                       max_batch: int | None = None,
                       **kwargs: Any) -> "ModelService":
        """A service whose ``/v1/solve`` cells go through a
        :class:`SolveCoalescer` sharing its cache and metrics."""
        cache = cache if cache is not None else ResultCache()
        metrics = kwargs.pop("metrics", None) or MetricsRegistry()
        coalesce_args: dict[str, Any] = {}
        if window_ms is not None:
            coalesce_args["window_ms"] = window_ms
        if max_batch is not None:
            coalesce_args["max_batch"] = max_batch
        coalescer = SolveCoalescer(cache=cache, metrics=metrics,
                                   **coalesce_args)
        return cls(cache=cache, metrics=metrics, coalescer=coalescer,
                   **kwargs)

    def close(self) -> None:
        """Stop the coalescer's flusher thread (if any) and flush."""
        if self.coalescer is not None:
            self.coalescer.close()
        self.cache.flush()

    def _sweepq(self) -> Any:
        """The service's one sweep queue, created on first use (lazy:
        most deployments never touch the async endpoints)."""
        with self._sweep_lock:
            if self._sweep_queue is None:
                from repro.sweepq import SweepQueue
                self._sweep_queue = SweepQueue(
                    state_dir=self.sweep_state_dir, cache=self.cache,
                    metrics=self.metrics)
            return self._sweep_queue

    def _executor(self, jobs: int | None = None,
                  engine: str | None = None) -> SweepExecutor:
        return SweepExecutor(jobs=jobs if jobs is not None else self.jobs,
                             cache=self.cache, metrics=self.metrics,
                             engine=engine if engine is not None
                             else self.engine)

    # -- operations ------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness payload for ``GET /healthz``."""
        return {
            "status": "ok",
            "version": __version__,
            "engine": self.engine,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "cache_entries": len(self.cache),
            "cache_hit_rate": round(self.cache.stats.hit_rate, 6),
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition for ``GET /metrics``."""
        return self.metrics.render()

    def solve(self, payload: Any, strict: bool = False) -> dict[str, Any]:
        """Evaluate the MVA for one protocol at one or more sizes.

        See :class:`repro.service.schema.SolveRequest` for the request
        schema.  With a :class:`SolveCoalescer` attached the cells join
        the shared micro-batching queue (blocking this thread until the
        batch resolves); the response is identical either way.
        """
        request, tasks = self.solve_prepare(payload, strict=strict)
        if not self.solve_uses_coalescer(request):
            result = self._executor(jobs=1, engine=request.engine).run(tasks)
            return self.solve_response(request, result)
        started = time.perf_counter()
        future, cached_flags = self.coalescer.submit_request(tasks)
        result = collect_sweep_result(
            tasks, dict(enumerate(future.result())), cached_flags,
            wall_seconds=time.perf_counter() - started,
            jobs=1, mode="coalesced")
        return self.solve_response(request, result)

    def solve_uses_coalescer(self, request: SolveRequest) -> bool:
        """Whether a solve request goes through the coalescer.

        A request that *explicitly* selects an engine bypasses the
        coalescing queue: coalesced batches are always solved by the
        batch MVA engine (with the scalar path as fallback), so
        honouring ``engine="scalar"`` means solving on the executor
        path instead of silently overriding the request.  Results are
        byte-identical either way; the field exists precisely so
        clients can pin the code path.
        """
        return self.coalescer is not None and request.engine is None

    def solve_prepare(self, payload: Any, strict: bool = False
                      ) -> tuple[SolveRequest, list[CellTask]]:
        """Parse a solve request into its cell tasks (shared by the
        blocking path above and the asyncio front-end, which awaits the
        coalescer futures instead of blocking a thread on them)."""
        request = SolveRequest.from_payload(payload, strict=strict)
        tasks = [CellTask(protocol=request.protocol,
                          sharing_label=request.sharing.label,
                          workload=request.workload, n=n, arch=request.arch)
                 for n in request.sizes]
        # One request's cells differ only in n: derive every cache key
        # from one shared-component lookup instead of one per cell.
        prime_task_keys(tasks)
        return request, tasks

    def solve_response(self, request: SolveRequest,
                       result: Any) -> dict[str, Any]:
        """Render one solve outcome (raises on total failure)."""
        self._reject_total_failure(result)
        return {
            "protocol": request.protocol.label,
            "sharing": request.sharing.label,
            "results": self._cell_rows(result),
            "failures": [f.as_dict() for f in result.failures],
            "summary": self._summary_dict(result.summary),
        }

    def grid(self, payload: Any, strict: bool = False) -> dict[str, Any]:
        """Run a sweep; the HTTP face of ``repro grid``.

        See :class:`repro.service.schema.GridRequest` for the request
        schema.
        """
        request = GridRequest.from_payload(payload, strict=strict)
        require(request.cell_count <= self.max_grid_cells,
                f"grid of {request.cell_count} cells exceeds the "
                f"per-request limit of {self.max_grid_cells}",
                code="grid-too-large")
        result = self._executor(jobs=request.jobs,
                                engine=request.engine).run_spec(
                                    request.spec())
        self._reject_total_failure(result)
        return {
            "cells": self._cell_rows(result),
            "failures": [f.as_dict() for f in result.failures],
            "summary": self._summary_dict(result.summary),
        }

    def sweep(self, payload: Any, strict: bool = False) -> dict[str, Any]:
        """Submit an asynchronous sharded sweep; returns a job handle.

        See :class:`repro.service.schema.SweepRequest` for the request
        schema.  The sweep runs on a background thread through the
        :class:`repro.sweepq.SweepQueue` (chunk leases, worker
        processes, crash recovery); poll :meth:`sweep_status` for
        progress.  Solved cells land in this service's shared result
        cache, so a ``/v1/grid`` request for the same cells after
        completion is answered entirely from cache.
        """
        request = SweepRequest.from_payload(payload, strict=strict)
        require(request.cell_count <= self.max_grid_cells,
                f"sweep of {request.cell_count} cells exceeds the "
                f"per-request limit of {self.max_grid_cells}",
                code="grid-too-large")
        workers = request.workers if request.workers is not None \
            else max(self.jobs, 1)
        queue = self._sweepq()
        tasks = tasks_for_spec(request.spec())
        chunk_size = request.chunk_size
        if chunk_size is None:
            from repro.sweepq import auto_chunk_size
            from repro.sweepq.chunks import DEFAULT_CHUNK_SIZE, MVA_CHUNK_CAP
            cap = DEFAULT_CHUNK_SIZE if request.simulate else MVA_CHUNK_CAP
            chunk_size = auto_chunk_size(len(tasks), workers, cap=cap)
        job_id = queue.submit(tasks, chunk_size=chunk_size)
        job = _SweepJob(job_id=job_id, workers=workers,
                        submitted_at=time.time())
        job.thread = threading.Thread(
            target=self._run_sweep, args=(job,), daemon=True)
        with self._sweep_lock:
            self._sweep_jobs[job_id] = job
        job.thread.start()
        progress = queue.progress(job_id)
        return {
            "job_id": job_id,
            "state": "running",
            "workers": workers,
            "cells": progress["total_cells"],
            "chunks": progress["chunks"],
            "chunk_size": progress["chunk_size"],
            "status_path": f"/v1/sweep/{job_id}",
        }

    def _run_sweep(self, job: _SweepJob) -> None:
        try:
            job.outcome = self._sweepq().run(job.job_id,
                                             workers=job.workers)
            job.state = "done"
        except Exception as exc:  # noqa: BLE001 - surfaced via status
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "failed"

    def sweep_status(self, job_id: str) -> dict[str, Any]:
        """Progress counters for one submitted sweep job.

        Counters come straight from the queue journal
        (queued/leased/done/failed chunks, requeues, recovered), so a
        poll during a crash-recovery window shows the takeover as it
        happens.
        """
        from repro.sweepq import UnknownJobError
        with self._sweep_lock:
            job = self._sweep_jobs.get(job_id)
        try:
            progress = self._sweepq().progress(job_id)
        except UnknownJobError:
            raise ServiceError(404, f"unknown sweep job {job_id!r}",
                               code="unknown-job") from None
        status: dict[str, Any] = {
            "job_id": job_id,
            "state": job.state if job is not None else progress["state"],
            "cells": progress["total_cells"],
            "chunk_size": progress["chunk_size"],
            "chunks": {key: progress[key] for key in
                       ("chunks", "queued", "leased", "done", "failed")},
            "cells_done": progress["cells_done"],
            "cells_failed": progress["cells_failed"],
            "requeues": progress["requeues"],
            "recovered": progress["recovered"],
        }
        if job is not None:
            status["workers"] = job.workers
            status["elapsed_seconds"] = round(
                time.time() - job.submitted_at, 3)
            if job.error is not None:
                status["error"] = job.error
            if job.outcome is not None:
                status["mode"] = job.outcome.mode
                status["wall_seconds"] = round(job.outcome.wall_seconds, 6)
        return status

    def capabilities(self) -> dict[str, Any]:
        """``GET /v1/capabilities``: what this deployment can do, so
        clients negotiate instead of sniffing error messages."""
        from repro.service.router import (
            API_VERSION,
            GET_ROUTES,
            MAX_BODY_BYTES,
            POST_ROUTES,
        )
        coalesce: dict[str, Any] = {"enabled": self.coalescer is not None}
        if self.coalescer is not None:
            coalesce["window_ms"] = self.coalescer.window_ms
            coalesce["max_batch"] = self.coalescer.max_batch
        return {
            "api_version": API_VERSION,
            "version": __version__,
            "engines": list(ENGINES),
            "default_engine": self.engine,
            "dispatch_modes": list(DISPATCH_MODES),
            "coalesce": coalesce,
            "limits": {
                "max_grid_cells": self.max_grid_cells,
                "max_body_bytes": MAX_BODY_BYTES,
            },
            "endpoints": {
                "get": [f"/{API_VERSION}{route}" for route in GET_ROUTES]
                       + [f"/{API_VERSION}/sweep/{{job_id}}"],
                "post": [f"/{API_VERSION}{route}" for route in POST_ROUTES],
            },
        }

    def list_jobs(self) -> dict[str, Any]:
        """``GET /v1/jobs``: every async job this service has accepted
        (currently sweep submissions), oldest first, with progress."""
        from repro.sweepq import UnknownJobError
        with self._sweep_lock:
            entries = list(self._sweep_jobs.values())
        rows: list[dict[str, Any]] = []
        for job in sorted(entries, key=lambda item: item.submitted_at):
            row: dict[str, Any] = {
                "job_id": job.job_id,
                "kind": "sweep",
                "state": job.state,
                "workers": job.workers,
                "elapsed_seconds": round(time.time() - job.submitted_at, 3),
                "status_path": f"/v1/sweep/{job.job_id}",
            }
            if job.error is not None:
                row["error"] = job.error
            try:
                progress = self._sweepq().progress(job.job_id)
            except UnknownJobError:  # pragma: no cover - journal pruned
                progress = None
            if progress is not None:
                row["cells"] = progress["total_cells"]
                row["cells_done"] = progress["cells_done"]
                row["cells_failed"] = progress["cells_failed"]
            rows.append(row)
        return {"jobs": rows, "count": len(rows)}

    def verify(self, payload: Any, strict: bool = False) -> dict[str, Any]:
        """Run the verification suite; the HTTP face of ``repro verify``.

        See :class:`repro.service.schema.VerifyRequest` for the request
        schema.  Violations are *data*, not errors: a run that finds
        them still returns 200 with ``ok: false`` and the structured
        violation records; only a malformed request or an internal
        failure is an error.  Every run also feeds this service's
        ``repro_verify_checks_total`` / ``repro_verify_violations_total``
        counters.
        """
        request = VerifyRequest.from_payload(payload, strict=strict)
        # Imported lazily: repro.verify pulls in the simulator and the
        # stress corners, which the service does not otherwise need.
        from repro.verify.runner import run_verify
        report = run_verify(tier=request.tier, metrics=self.metrics)
        return report.as_dict()

    # -- response assembly -----------------------------------------------

    @staticmethod
    def _cell_rows(result: Any) -> list[dict[str, Any]]:
        """Per-cell rows with status: values, ``cached`` flag, ``error``
        for failed cells, and solve provenance (``attempts`` /
        ``effective_seed``) where it differs from the default."""
        rows = []
        for value, was_cached, meta in zip(result.cells, result.cached,
                                           result.meta):
            row = dict(value.as_row(), cached=was_cached,
                       status="error" if value.error else "ok")
            if meta.get("attempts", 1) > 1:
                row["attempts"] = meta["attempts"]
            if meta.get("effective_seed") is not None:
                row["effective_seed"] = meta["effective_seed"]
            if meta.get("recovered"):
                row["recovered"] = True
                row["damping"] = meta.get("damping")
            rows.append(row)
        return rows

    @staticmethod
    def _reject_total_failure(result: Any) -> None:
        """Per-cell failures are part of a 200 response; only a sweep
        with *no* surviving cell is a request-level error."""
        summary = result.summary
        if summary.total and summary.failed == summary.total:
            raise ServiceError(
                500, f"all {summary.total} cells failed",
                details={"failures": [f.as_dict()
                                      for f in result.failures]},
                code="all-cells-failed")

    @staticmethod
    def _summary_dict(summary: Any) -> dict[str, Any]:
        return {
            "total": summary.total,
            "solved": summary.solved,
            "cache_hits": summary.cache_hits,
            "cache_hit_rate": round(summary.cache_hit_rate, 6),
            "retries": summary.retries,
            "failed": summary.failed,
            "recovered": summary.recovered,
            "wall_seconds": round(summary.wall_seconds, 6),
            "jobs": summary.jobs,
            "mode": summary.mode,
        }
