"""Customized mean-value equations for the two-level bus hierarchy.

The structure mirrors the flat model (repro.core.equations) with one
extra nested resource.  Per memory request:

* local cache hits pay only cache interference (within the cluster);
* a broadcast occupies the *local* bus; if it must reach other clusters
  or memory it holds the local bus through a nested global transaction
  (global wait + global occupancy), the same nesting the flat model
  uses for the memory module in equation (7);
* a remote read likewise stays cluster-local when an in-cluster cache
  supplies the block, and otherwise escalates.

Escape probabilities come from the workload's cache-supply parameters
and the hierarchy's ``cluster_locality``:

* read escape: the block comes from memory (always global) unless some
  cache supplies it AND the supplier is in-cluster;
* broadcast escape: memory-updating broadcasts always escape; pure
  invalidations/updates stay local when the sharers are in-cluster.

Waiting times at each bus use the equation (5)-(10) machinery with the
appropriate customer population: K-1 cache peers for the local bus,
N-1 for the global bus.  The fixed point iterates (w_local, w_global,
w_mem) from a cold start, exactly like the flat solver.

With clusters = 1 nothing escapes and the global bus is unused; the
model then *equals the flat model* (asserted by the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.equations import _p_busy
from repro.core.metrics import ResponseBreakdown
from repro.protocols.modifications import ProtocolSpec
from repro.workload.derived import DerivedInputs, derive_inputs
from repro.workload.parameters import ArchitectureParams, WorkloadParameters
from repro.hierarchy.params import HierarchyParams


@dataclass(frozen=True)
class HierarchicalReport:
    """Performance measures for one hierarchy solution."""

    params: HierarchyParams
    protocol_label: str
    response: ResponseBreakdown
    w_local_bus: float
    w_global_bus: float
    w_mem: float
    u_local_bus: float
    u_global_bus: float
    u_mem: float
    p_read_escape: float
    p_bc_escape: float
    iterations: int
    converged: bool

    @property
    def cycle_time(self) -> float:
        return self.response.total

    @property
    def n_processors(self) -> int:
        return self.params.n_processors

    @property
    def speedup(self) -> float:
        r = self.response
        return self.n_processors * (r.tau + r.t_supply) / r.total

    @property
    def processing_power(self) -> float:
        return self.n_processors * self.response.tau / self.response.total


class HierarchicalMVAModel:
    """Two-level-bus multiprocessor in the paper's customized-MVA style."""

    def __init__(
        self,
        workload: WorkloadParameters,
        hierarchy: HierarchyParams,
        protocol: ProtocolSpec | None = None,
        arch: ArchitectureParams | None = None,
        tolerance: float = 1e-9,
        max_iterations: int = 500,
    ):
        self.protocol = protocol if protocol is not None else ProtocolSpec()
        self.workload = self.protocol.adjust_workload(workload)
        self.arch = arch if arch is not None else ArchitectureParams()
        self.hierarchy = hierarchy
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.inputs: DerivedInputs = derive_inputs(
            self.workload, self.arch, self.protocol.mod_numbers)
        self._escapes = self._escape_probabilities()

    # -- derived routing ----------------------------------------------------

    def _escape_probabilities(self) -> tuple[float, float]:
        """(p_read_escape, p_bc_escape)."""
        if self.hierarchy.is_flat:
            return 0.0, 0.0
        theta = self.hierarchy.cluster_locality
        # Reads: satisfied in-cluster when a peer cache supplies the
        # block and that supplier is local, or, failing that, when the
        # cluster-level cache holds it (Wilson's scaling mechanism).
        peer_local = self.inputs.p_csup_rr * theta
        p_read_escape = ((1.0 - peer_local)
                         * (1.0 - self.hierarchy.cluster_cache_hit))
        # Broadcasts: memory updates must reach the (global) memory;
        # invalidates stay local when the sharers are local.
        p_bc_escape = 1.0 if self.inputs.bc_updates_memory else 1.0 - theta
        return p_read_escape, p_bc_escape

    @property
    def p_read_escape(self) -> float:
        return self._escapes[0]

    @property
    def p_bc_escape(self) -> float:
        return self._escapes[1]

    # -- the fixed point ------------------------------------------------------

    def solve(self) -> HierarchicalReport:
        inp = self.inputs
        hier = self.hierarchy
        n = hier.n_processors
        k = hier.per_cluster
        overhead = hier.global_overhead_cycles
        p_re, p_be = self._escapes
        interference = inp.cache_interference(k)

        w_lb = w_gb = w_mem = q_lb = 0.0
        iterations = 0
        converged = False
        response = None
        for iterations in range(1, self.max_iterations + 1):
            # Global occupancy of escaping transactions.
            g_bc = inp.t_bc + overhead + w_mem
            g_rr = inp.t_read + overhead
            # Local-bus occupancy.  Local-only ops use the flat service
            # time; an escaping op crosses the local bus too (address +
            # transfer + repeat overhead).  With split transactions the
            # local bus is released during the global phase; otherwise
            # it is held through it, the way the flat model's broadcasts
            # hold the bus through the memory wait.  Memory (w_mem)
            # nests in the local broadcast only in the flat case, where
            # it hangs off the single bus.
            if hier.is_flat:
                l_bc = inp.t_bc + w_mem
                l_rr = inp.t_read
                esc_bc = esc_rr = 0.0
            else:
                cross_bc = inp.t_bc + overhead
                cross_rr = self.arch.cache_supply_cycles + overhead
                l_bc = (1.0 - p_be) * inp.t_bc + p_be * cross_bc
                l_rr = ((1.0 - p_re) * self.arch.cache_supply_cycles
                        + p_re * cross_rr)
                esc_bc = p_be * (w_gb + g_bc)
                esc_rr = p_re * (w_gb + g_rr)
                if not hier.split_transactions:
                    l_bc += esc_bc
                    l_rr += esc_rr
                    esc_bc = esc_rr = 0.0

            # Response times (equations 1-4 analog).
            n_int = interference.n_interference(q_lb)
            r_local = inp.p_local * n_int * interference.t_interference
            r_bc = inp.p_bc * (w_lb + l_bc + esc_bc)
            r_rr = inp.p_rr * (w_lb + l_rr + esc_rr)
            response = ResponseBreakdown(
                tau=self.workload.tau, r_local=r_local, r_broadcast=r_bc,
                r_remote_read=r_rr, t_supply=self.arch.t_supply)
            new_r = response.total

            # Local bus (population: the K caches of one cluster).
            local_demand = inp.p_bc * l_bc + inp.p_rr * l_rr
            u_lb = k * local_demand / new_r
            q_new = (k - 1) * (r_bc + r_rr) / new_r
            w_lb_new = self._bus_wait(
                q_new, u_lb, k,
                [(inp.p_bc, l_bc), (inp.p_rr, l_rr)])

            # Global bus (population: all N caches).
            if hier.is_flat:
                u_gb = 0.0
                w_gb_new = 0.0
            else:
                global_demand = (inp.p_bc * p_be * g_bc
                                 + inp.p_rr * p_re * g_rr)
                u_gb = n * global_demand / new_r
                q_gb = (n - 1) * (inp.p_bc * p_be * (w_gb + g_bc)
                                  + inp.p_rr * p_re * (w_gb + g_rr)) / new_r
                w_gb_new = self._bus_wait(
                    q_gb, u_gb, n,
                    [(inp.p_bc * p_be, g_bc), (inp.p_rr * p_re, g_rr)])

            # Memory modules (equation 11-12 analog; all N processors).
            d_mem = self.arch.memory_latency
            u_mem = (n / self.arch.memory_modules
                     * inp.memory_ops_per_request() * d_mem / new_r)
            w_mem_new = _p_busy(u_mem, n) * d_mem / 2.0

            delta = max(abs(w_lb_new - w_lb), abs(w_gb_new - w_gb),
                        abs(w_mem_new - w_mem), abs(q_new - q_lb))
            w_lb, w_gb, w_mem, q_lb = (
                w_lb_new, w_gb_new, w_mem_new, q_new)
            if delta < self.tolerance:
                converged = True
                break

        assert response is not None
        return HierarchicalReport(
            params=hier,
            protocol_label=self.protocol.label,
            response=response,
            w_local_bus=w_lb,
            w_global_bus=w_gb,
            w_mem=w_mem,
            u_local_bus=min(u_lb, 1.0),
            u_global_bus=min(u_gb, 1.0),
            u_mem=min(u_mem, 1.0),
            p_read_escape=p_re,
            p_bc_escape=p_be,
            iterations=iterations,
            converged=converged,
        )

    @staticmethod
    def _bus_wait(q_seen: float, utilization: float, population: int,
                  classes: list[tuple[float, float]]) -> float:
        """Equations (5)/(8)/(9)/(10) for one bus with per-class
        (probability, occupancy) pairs."""
        busy_mass = sum(p * t for p, t in classes)
        if busy_mass <= 0.0:
            return 0.0
        prob_mass = sum(p for p, _ in classes)
        t_bus = sum(p * t for p, t in classes) / prob_mass
        t_res = sum((p * t / busy_mass) * (t / 2.0) for p, t in classes)
        p_busy = _p_busy(utilization, population)
        return max(q_seen - p_busy, 0.0) * t_bus + p_busy * t_res

    def speedup(self) -> float:
        return self.solve().speedup
