"""Hierarchical-bus extension of the customized MVA.

The paper closes: "the approach is certainly applicable to the
performance analysis of larger and more complex cache-coherent
multiprocessors [Wils87, GoWo87]" -- Wilson's hierarchical cache/bus
architecture being the canonical example.  This package builds that
extension in the same customized-MVA style: C clusters of K processors,
each cluster on its own snooping bus, all clusters joined by a global
bus that fronts main memory.

Transactions that can be satisfied inside the cluster (an in-cluster
cache supplies the block, or a broadcast's sharers are cluster-local)
occupy only the local bus; everything else holds the local bus *through*
a nested global-bus transaction, exactly the way the flat model's
broadcasts hold the bus through the memory-module wait (equation 7).

See :class:`HierarchyParams` and :class:`HierarchicalMVAModel`.
"""

from repro.hierarchy.params import HierarchyParams
from repro.hierarchy.model import HierarchicalMVAModel, HierarchicalReport

__all__ = [
    "HierarchicalMVAModel",
    "HierarchicalReport",
    "HierarchyParams",
]
