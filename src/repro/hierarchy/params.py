"""Configuration of the two-level bus hierarchy."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HierarchyParams:
    """A two-level (cluster / global) shared-bus hierarchy.

    Attributes
    ----------
    clusters:
        Number of clusters C, each with its own snooping bus.  With
        C = 1 the model collapses to the paper's flat single-bus system
        (memory hangs off the one bus; nothing escapes).
    per_cluster:
        Processors per cluster, K.  Total system size N = C * K.
    cluster_locality:
        Probability that the caches relevant to a shared-block
        transaction (the supplier of a missed block; the sharers hit by
        a broadcast) live in the requester's own cluster.  1.0 models
        perfectly partitioned sharing; 1/C models uniformly random
        placement.
    global_overhead_cycles:
        Extra arbitration/repeat cycles added to every transaction that
        crosses onto the global bus.
    cluster_cache_hit:
        Probability that a miss that no in-cluster cache can supply is
        satisfied by the cluster-level (second-level) cache, Wilson's
        key scaling mechanism.  0.0 removes the cluster cache.
    split_transactions:
        When True (pended buses), an escaping transaction releases the
        local bus while it waits for and uses the global bus; when
        False, the local bus is held through the whole global
        transaction, the way the flat model's broadcasts hold the bus
        through the memory wait.
    """

    clusters: int
    per_cluster: int
    cluster_locality: float = 0.5
    global_overhead_cycles: float = 1.0
    cluster_cache_hit: float = 0.8
    split_transactions: bool = True

    def __post_init__(self) -> None:
        if self.clusters < 1:
            raise ValueError(f"clusters must be >= 1, got {self.clusters!r}")
        if self.per_cluster < 1:
            raise ValueError(
                f"per_cluster must be >= 1, got {self.per_cluster!r}")
        if not 0.0 <= self.cluster_locality <= 1.0:
            raise ValueError("cluster_locality must be in [0, 1]")
        if self.global_overhead_cycles < 0.0:
            raise ValueError("global_overhead_cycles must be non-negative")
        if not 0.0 <= self.cluster_cache_hit <= 1.0:
            raise ValueError("cluster_cache_hit must be in [0, 1]")

    @property
    def n_processors(self) -> int:
        return self.clusters * self.per_cluster

    @property
    def is_flat(self) -> bool:
        """A single cluster is the paper's flat system."""
        return self.clusters == 1

    @classmethod
    def uniform_sharing(cls, clusters: int, per_cluster: int,
                        global_overhead_cycles: float = 1.0) -> "HierarchyParams":
        """Locality of uniformly random sharer placement: a specific
        relevant cache is in-cluster with probability ~ (K-1)/(N-1)."""
        n = clusters * per_cluster
        locality = ((per_cluster - 1) / (n - 1)) if n > 1 else 1.0
        return cls(clusters=clusters, per_cluster=per_cluster,
                   cluster_locality=locality,
                   global_overhead_cycles=global_overhead_cycles)
