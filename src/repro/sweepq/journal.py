"""The sweep queue's persistent journal: jobs, chunks and leases.

A single SQLite database (write-ahead-log mode) is the source of truth
for every job's chunk table.  Workers *claim* chunks under a lease --
a UUID token with an expiry timestamp -- heartbeat the lease while
solving, and *complete* the chunk with the same token.  The journal is
the arbiter of every race:

* **lease expiry -> requeue**: a chunk whose lease expired (worker
  killed, machine lost) is claimable again; the takeover is counted in
  ``requeues`` so recovery is observable;
* **double-lease rejection**: ``heartbeat`` and ``complete`` verify the
  caller's lease token against the chunk row -- a zombie worker whose
  lease was reassigned cannot extend or complete the chunk out from
  under the new owner;
* **bounded retries**: a chunk that has burned ``max_attempts`` leases
  without completing is marked ``failed`` instead of being leased
  forever (its cells become error rows downstream).

All timestamps are passed in explicitly (``now``), defaulting to
``time.time()``, so lease semantics are unit-testable without sleeping.
The journal is shared across forked worker processes and threads, and
SQLite connections must not cross either boundary -- so each thread of
each process lazily opens (and caches) its own connection, keyed by
pid to survive forks.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.sweepq.chunks import Chunk

#: Chunk lifecycle states.
QUEUED, LEASED, DONE, FAILED = "queued", "leased", "done", "failed"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id      TEXT PRIMARY KEY,
    created     REAL NOT NULL,
    state       TEXT NOT NULL,
    chunk_size  INTEGER NOT NULL,
    total_cells INTEGER NOT NULL,
    spec        TEXT,
    tasks       BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS chunks (
    job_id        TEXT NOT NULL,
    idx           INTEGER NOT NULL,
    key           TEXT NOT NULL,
    start         INTEGER NOT NULL,
    stop          INTEGER NOT NULL,
    state         TEXT NOT NULL,
    source        TEXT,
    lease_id      TEXT,
    worker        TEXT,
    lease_expires REAL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    requeues      INTEGER NOT NULL DEFAULT 0,
    extras        TEXT,
    error         TEXT,
    PRIMARY KEY (job_id, idx)
);
"""


class UnknownJobError(KeyError):
    """Raised when a job id does not exist in the journal."""


@dataclass(frozen=True)
class Lease:
    """One granted chunk lease (what a worker holds while solving)."""

    index: int
    start: int
    stop: int
    lease_id: str
    attempts: int
    #: True when this lease took over an expired one (a recovery).
    requeued: bool


@dataclass(frozen=True)
class JobRecord:
    job_id: str
    created: float
    state: str
    chunk_size: int
    total_cells: int
    spec: dict[str, Any] | None


@dataclass(frozen=True)
class ChunkRecord:
    index: int
    key: str
    start: int
    stop: int
    state: str
    source: str | None
    attempts: int
    requeues: int
    extras: dict[str, Any] | None
    error: str | None


class SweepJournal:
    """SQLite-backed job/chunk/lease bookkeeping for sweep queues."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._tls = threading.local()
        with self._connect() as conn:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.executescript(_SCHEMA)

    def close(self) -> None:
        """Close this thread's cached connection (other threads'
        connections are reclaimed when their thread dies)."""
        conn = getattr(self._tls, "conn", None)
        if conn is not None and self._tls.pid == os.getpid():
            conn.close()
        self._tls.conn = None

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """This thread's cached connection (opened on first use).

        Connection setup and teardown dominate short journal
        transactions (each close checkpoints the WAL when it is the
        last connection), so connections live as long as their thread.
        A forked child sees the parent's cached object but never uses
        it: the pid key forces a fresh connection after fork.
        """
        conn = getattr(self._tls, "conn", None)
        if conn is None or self._tls.pid != os.getpid():
            conn = sqlite3.connect(self.path, timeout=30.0,
                                   isolation_level=None)
            conn.execute("PRAGMA busy_timeout=30000")
            # WAL + NORMAL keeps commits durable against process
            # crashes (our failure model) without an fsync per lease
            # transition.
            conn.execute("PRAGMA synchronous=NORMAL")
            self._tls.conn = conn
            self._tls.pid = os.getpid()
        try:
            yield conn
        except BaseException:
            # The connection outlives the call: never leave a broken
            # transaction open on it.
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise

    # -- jobs ------------------------------------------------------------

    def create_job(self, job_id: str, tasks_blob: bytes,
                   chunks: Sequence[Chunk], chunk_size: int,
                   spec: dict[str, Any] | None = None,
                   now: float | None = None) -> None:
        now = time.time() if now is None else now
        total = chunks[-1].stop if chunks else 0
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            conn.execute(
                "INSERT INTO jobs (job_id, created, state, chunk_size, "
                "total_cells, spec, tasks) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (job_id, now, "queued", chunk_size, total,
                 json.dumps(spec) if spec is not None else None,
                 tasks_blob))
            conn.executemany(
                "INSERT INTO chunks (job_id, idx, key, start, stop, state) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                [(job_id, c.index, c.key, c.start, c.stop, QUEUED)
                 for c in chunks])
            conn.execute("COMMIT")

    def get_job(self, job_id: str) -> JobRecord:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT job_id, created, state, chunk_size, total_cells, "
                "spec FROM jobs WHERE job_id = ?", (job_id,)).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return JobRecord(job_id=row[0], created=row[1], state=row[2],
                         chunk_size=row[3], total_cells=row[4],
                         spec=json.loads(row[5]) if row[5] else None)

    def load_tasks(self, job_id: str) -> bytes:
        with self._connect() as conn:
            row = conn.execute("SELECT tasks FROM jobs WHERE job_id = ?",
                               (job_id,)).fetchone()
        if row is None:
            raise UnknownJobError(job_id)
        return row[0]

    def list_jobs(self) -> list[JobRecord]:
        with self._connect() as conn:
            ids = [r[0] for r in conn.execute(
                "SELECT job_id FROM jobs ORDER BY created")]
        return [self.get_job(job_id) for job_id in ids]

    def set_job_state(self, job_id: str, state: str) -> None:
        with self._connect() as conn:
            conn.execute("UPDATE jobs SET state = ? WHERE job_id = ?",
                         (state, job_id))

    # -- chunk lifecycle -------------------------------------------------

    def chunk_rows(self, job_id: str) -> list[ChunkRecord]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT idx, key, start, stop, state, source, attempts, "
                "requeues, extras, error FROM chunks WHERE job_id = ? "
                "ORDER BY idx", (job_id,)).fetchall()
        return [ChunkRecord(
            index=r[0], key=r[1], start=r[2], stop=r[3], state=r[4],
            source=r[5], attempts=r[6], requeues=r[7],
            extras=json.loads(r[8]) if r[8] else None, error=r[9])
            for r in rows]

    def claim(self, job_id: str, worker: str, lease_ttl: float,
              max_attempts: int = 5,
              now: float | None = None) -> Lease | None:
        """Lease the lowest-index claimable chunk, or return ``None``.

        Claimable: ``queued``, or ``leased`` with an expired lease (the
        takeover increments ``requeues``).  An expired chunk that has
        already burned ``max_attempts`` leases is marked ``failed``
        instead of being leased again.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                while True:
                    row = conn.execute(
                        "SELECT idx, start, stop, state, attempts, requeues "
                        "FROM chunks WHERE job_id = ? AND (state = ? OR "
                        "(state = ? AND lease_expires <= ?)) "
                        "ORDER BY idx LIMIT 1",
                        (job_id, QUEUED, LEASED, now)).fetchone()
                    if row is None:
                        return None
                    idx, start, stop, state, attempts, requeues = row
                    expired = state == LEASED
                    if attempts >= max_attempts:
                        conn.execute(
                            "UPDATE chunks SET state = ?, lease_id = NULL, "
                            "error = ? WHERE job_id = ? AND idx = ?",
                            (FAILED,
                             f"abandoned after {attempts} expired leases",
                             job_id, idx))
                        continue
                    lease_id = uuid.uuid4().hex
                    conn.execute(
                        "UPDATE chunks SET state = ?, lease_id = ?, "
                        "worker = ?, lease_expires = ?, attempts = ?, "
                        "requeues = ? WHERE job_id = ? AND idx = ?",
                        (LEASED, lease_id, worker, now + lease_ttl,
                         attempts + 1, requeues + (1 if expired else 0),
                         job_id, idx))
                    return Lease(index=idx, start=start, stop=stop,
                                 lease_id=lease_id, attempts=attempts + 1,
                                 requeued=expired)
            finally:
                conn.execute("COMMIT")

    def heartbeat(self, job_id: str, index: int, lease_id: str,
                  lease_ttl: float, now: float | None = None) -> bool:
        """Extend a held lease; False if it was reassigned or closed."""
        now = time.time() if now is None else now
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE chunks SET lease_expires = ? WHERE job_id = ? AND "
                "idx = ? AND state = ? AND lease_id = ?",
                (now + lease_ttl, job_id, index, LEASED, lease_id))
            return cursor.rowcount == 1

    def complete(self, job_id: str, index: int, lease_id: str,
                 extras: dict[str, Any] | None = None,
                 now: float | None = None) -> bool:
        """Mark a leased chunk done; False if the lease is no longer
        ours (double-lease rejection: the chunk stays with its current
        owner and this worker's results are discarded)."""
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE chunks SET state = ?, source = 'worker', "
                "lease_id = NULL, extras = ? "
                "WHERE job_id = ? AND idx = ? AND state = ? AND "
                "lease_id = ?",
                (DONE, json.dumps(extras) if extras else None,
                 job_id, index, LEASED, lease_id))
            return cursor.rowcount == 1

    def mark_done_cached(self, job_id: str, index: int) -> bool:
        """Complete a queued chunk whose cells were all cache-answered."""
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE chunks SET state = ?, source = 'cache' "
                "WHERE job_id = ? AND idx = ? AND state = ?",
                (DONE, job_id, index, QUEUED))
            return cursor.rowcount == 1

    def reset_chunk(self, job_id: str, index: int) -> None:
        """Requeue a chunk (e.g. a done chunk whose cached cells were
        evicted before a resume could read them)."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE chunks SET state = ?, source = NULL, "
                "lease_id = NULL, worker = NULL, lease_expires = NULL, "
                "extras = NULL, error = NULL WHERE job_id = ? AND idx = ?",
                (QUEUED, job_id, index))

    def fail_chunk(self, job_id: str, index: int, error: str) -> None:
        with self._connect() as conn:
            conn.execute(
                "UPDATE chunks SET state = ?, lease_id = NULL, error = ? "
                "WHERE job_id = ? AND idx = ?",
                (FAILED, error, job_id, index))

    # -- progress --------------------------------------------------------

    def counters(self, job_id: str) -> dict[str, int]:
        """Progress counters: chunk states, recoveries and cell totals."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*), SUM(stop - start), SUM(requeues), "
                "SUM(CASE WHEN requeues > 0 THEN 1 ELSE 0 END) "
                "FROM chunks WHERE job_id = ? GROUP BY state",
                (job_id,)).fetchall()
        out = {state: 0 for state in (QUEUED, LEASED, DONE, FAILED)}
        cells = {state: 0 for state in (QUEUED, LEASED, DONE, FAILED)}
        requeues = 0
        recovered = 0
        for state, count, cell_count, state_requeues, state_recovered in rows:
            out[state] = count
            cells[state] = cell_count or 0
            requeues += state_requeues or 0
            if state == DONE:
                recovered = state_recovered or 0
        total = sum(out.values())
        return {
            "chunks": total,
            "queued": out[QUEUED],
            "leased": out[LEASED],
            "done": out[DONE],
            "failed": out[FAILED],
            "requeues": requeues,
            "recovered": recovered,
            "cells": sum(cells.values()),
            "cells_done": cells[DONE],
            "cells_failed": cells[FAILED],
        }

    def unfinished(self, job_id: str) -> int:
        """Chunks not yet terminal (neither done nor failed)."""
        with self._connect() as conn:
            row = conn.execute(
                "SELECT COUNT(*) FROM chunks WHERE job_id = ? AND "
                "state NOT IN (?, ?)", (job_id, DONE, FAILED)).fetchone()
        return int(row[0])
