"""Sharding a sweep into content-addressed chunks of cells.

A *chunk* is a contiguous ``[start, stop)`` slice of the sweep's task
list in canonical task order.  Chunks -- not cells -- are the unit of
work the queue leases to workers, so one IPC round-trip (and one
vectorized :func:`repro.core.batch.solve_batch` call) covers a whole
slice instead of one pickled cell.

Each chunk carries a content-addressed ``key``: the SHA-256 digest over
its members' cache keys (:func:`repro.service.keys.task_key`), in
order.  Two jobs over the same cells with the same chunk size shard to
the same chunk keys, so journals are auditable and a resumed job can
prove its chunk table still describes the same work.

Chunk layout is fixed at job-creation time and never re-derived from
cache state, so a killed-and-restarted sweep sees the identical chunk
table it started with.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass

#: Upper bound on the automatic chunk size: wide enough that the
#: vectorized batch solve runs at full width and amortizes the journal
#: round-trip, small enough that a lost lease never forfeits much work
#: even when the chunk holds second-per-cell simulation cells.
DEFAULT_CHUNK_SIZE = 256

#: Cap for sweeps known to be MVA-only: each cell is sub-millisecond,
#: so a lost lease forfeits little even at full batch width, and the
#: per-call fixed cost of the batch solver rewards the widest chunks.
MVA_CHUNK_CAP = 1024


@dataclass(frozen=True)
class Chunk:
    """One leaseable slice of a sweep's task list."""

    index: int
    start: int
    stop: int
    #: SHA-256 over the member tasks' cache keys, in order.
    key: str

    @property
    def size(self) -> int:
        return self.stop - self.start


def chunk_key(task_keys: Sequence[str]) -> str:
    """Content-addressed identity of one chunk (order-sensitive)."""
    digest = hashlib.sha256()
    for key in task_keys:
        digest.update(key.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def chunk_tasks(tasks: Sequence, chunk_size: int) -> list[Chunk]:
    """Shard ``tasks`` into contiguous chunks of ``chunk_size`` cells."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
    keys = [task.key for task in tasks]
    chunks: list[Chunk] = []
    for index, start in enumerate(range(0, len(tasks), chunk_size)):
        stop = min(start + chunk_size, len(tasks))
        chunks.append(Chunk(index=index, start=start, stop=stop,
                            key=chunk_key(keys[start:stop])))
    return chunks


def auto_chunk_size(n_cells: int, workers: int,
                    cap: int = DEFAULT_CHUNK_SIZE) -> int:
    """A chunk size giving each worker ~4 chunks, capped at ``cap``.

    Small sweeps shard finely so every worker gets something to do;
    large sweeps cap at ``cap`` cells per lease so the batch engine
    amortizes the journal round-trip without a lost lease costing much
    re-work.  Callers that know the sweep is MVA-only pass
    :data:`MVA_CHUNK_CAP` for full batch width.
    """
    if n_cells < 1:
        return 1
    per_worker = -(-n_cells // (max(workers, 1) * 4))  # ceil division
    return max(1, min(cap, per_worker))
