"""Shared-memory result transport: one NumPy array per sweep, zero
per-cell pickles.

Workers and the queue parent share a single memory-mapped file (NumPy
``memmap`` over ``mmap(MAP_SHARED)``): a ``(cells,)`` status byte array
followed by a ``(cells, NFIELDS)`` float64 matrix holding every numeric
quantity of a solved cell -- the ``GridCell`` measures plus the solve
metadata (iterations, damping, attempts, elapsed, effective seed).  A
worker finishing a chunk writes its slice of the matrix in place and
flushes; the only data crossing the journal per chunk is a JSON
*extras* sidecar for the sparse non-numeric leftovers (solver warnings,
retry provenance, error payloads), which are empty for the common case.

``float64`` round-trips through the mapping bit-exactly, so a value
decoded by the parent is byte-identical to the dict the worker
computed -- the transport cannot perturb the determinism guarantee.

The file lives in the queue's state directory (it also survives a
parent crash, though resume correctness rests on the result cache, not
on this transport buffer).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

#: Numeric columns of the shared result matrix, in storage order.
FIELDS: tuple[str, ...] = (
    "speedup", "u_bus", "w_bus", "cycle_time", "processing_power",
    "sim_ci", "iterations", "damping", "recovered", "attempts",
    "elapsed_s", "effective_seed",
)
_COL = {name: i for i, name in enumerate(FIELDS)}

#: Per-cell status byte.
EMPTY, OK, ERROR = 0, 1, 2

_NAN = float("nan")


def _status_bytes(n_cells: int) -> int:
    """Status-row size padded to 8 bytes so the matrix stays aligned."""
    return (n_cells + 7) & ~7


class ResultStore:
    """The shared (status, matrix) view over one sweep's result file."""

    def __init__(self, path: str | Path, n_cells: int, create: bool):
        self.path = Path(path)
        self.n_cells = n_cells
        pad = _status_bytes(n_cells)
        total = pad + n_cells * len(FIELDS) * 8
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb") as fh:
                fh.truncate(total)
        mode = "r+"
        self._mm = np.memmap(self.path, dtype=np.uint8, mode=mode,
                             shape=(total,))
        self.status = self._mm[:n_cells]
        self.data = self._mm[pad:].view(np.float64).reshape(
            (n_cells, len(FIELDS)))

    @classmethod
    def create(cls, path: str | Path, n_cells: int) -> "ResultStore":
        return cls(path, n_cells, create=True)

    @classmethod
    def attach(cls, path: str | Path, n_cells: int) -> "ResultStore":
        return cls(path, n_cells, create=False)

    def flush(self) -> None:
        self._mm.flush()

    def close(self) -> None:
        # Drop the mapping reference; the buffer is reclaimed with the
        # last view (numpy keeps the mmap alive while slices exist).
        del self.status, self.data
        self._mm = None  # type: ignore[assignment]

    # -- encoding --------------------------------------------------------

    def write(self, index: int, task: Any,
              value: dict[str, Any]) -> dict[str, Any] | None:
        """Encode one worker value; returns the JSON extras (or None).

        Error payloads ride entirely in the extras (they are rare and
        carry strings); solved cells pack every numeric quantity into
        the shared matrix and only spill non-empty warnings / retry
        provenance into the extras.
        """
        if value.get("error") is not None:
            self.status[index] = ERROR
            return value
        cell = value["cell"]
        iterations = value.get("iterations")
        seed = value.get("effective_seed")
        # One assignment per cell: routing every column through the
        # memmap individually costs ~10x more than building the row
        # in Python first (measured on the E13 stress grid).
        self.data[index] = (
            cell["speedup"], cell["u_bus"], cell["w_bus"],
            cell["cycle_time"], cell["processing_power"],
            _NAN if cell.get("sim_ci") is None else cell["sim_ci"],
            _NAN if iterations is None else iterations,
            value.get("damping", _NAN),
            1.0 if value.get("recovered") else 0.0,
            value.get("attempts", 1),
            value.get("elapsed_s", 0.0),
            _NAN if seed is None else seed,
        )
        self.status[index] = OK
        extras: dict[str, Any] = {}
        if value.get("warnings"):
            extras["warnings"] = value["warnings"]
        if value.get("retried_after") is not None:
            extras["retried_after"] = value["retried_after"]
        # Vector-engine provenance rides the sidecar: the numeric
        # matrix layout stays frozen across engines.
        if value.get("sim_engine") not in (None, "scalar"):
            extras["sim_engine"] = value["sim_engine"]
            extras["sim_reps"] = value.get("sim_reps", 1)
        return extras or None

    # -- decoding --------------------------------------------------------

    def read(self, index: int, task: Any,
             extras: dict[str, Any] | None) -> dict[str, Any]:
        """Rebuild the worker's value dict for one cell.

        The result is shaped exactly like the scalar executor's cache
        values (:func:`repro.service.executor.evaluate_task` plus the
        retry wrapper's ``attempts``), so cache entries written from
        the queue are interchangeable with per-cell solves.
        """
        status = int(self.status[index])
        if status == ERROR:
            assert extras is not None, "error cell without extras payload"
            return extras
        if status != OK:
            raise ValueError(f"cell {index} has no result (status {status})")
        # One memmap access per cell (see ``write``): ``tolist`` turns
        # the row into plain Python floats bit-exactly.
        row = self.data[index].tolist()
        extras = extras or {}
        cell: dict[str, Any] = {
            "protocol": task.protocol.label,
            "sharing": task.sharing_label,
            "n_processors": task.n,
            "speedup": row[_COL["speedup"]],
            "u_bus": row[_COL["u_bus"]],
            "w_bus": row[_COL["w_bus"]],
            "cycle_time": row[_COL["cycle_time"]],
            "processing_power": row[_COL["processing_power"]],
            "method": task.method,
            "sim_ci": None,
            "error": None,
        }
        attempts = int(row[_COL["attempts"]])
        elapsed = row[_COL["elapsed_s"]]
        if task.method == "sim":
            ci = row[_COL["sim_ci"]]
            cell["sim_ci"] = None if ci != ci else ci
            value: dict[str, Any] = {
                "cell": cell,
                "iterations": None,
                "effective_seed": int(row[_COL["effective_seed"]]),
                "elapsed_s": elapsed,
                "attempts": attempts,
            }
            if "retried_after" in extras:
                value["retried_after"] = extras["retried_after"]
            if "sim_engine" in extras:
                value["sim_engine"] = extras["sim_engine"]
                value["sim_reps"] = extras.get("sim_reps", 1)
            return value
        return {
            "cell": cell,
            "iterations": int(row[_COL["iterations"]]),
            "damping": row[_COL["damping"]],
            "recovered": bool(row[_COL["recovered"]]),
            "warnings": extras.get("warnings", []),
            "elapsed_s": elapsed,
            "attempts": attempts,
        }
