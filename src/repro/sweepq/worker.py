"""Chunk workers: lease, solve a whole chunk, write shared results.

A worker is a loop over :meth:`repro.sweepq.journal.SweepJournal.claim`:
it leases the lowest-index claimable chunk, heartbeats the lease on a
background thread while solving, writes the chunk's results into the
shared :class:`repro.sweepq.store.ResultStore`, and completes the lease.
The loop exits when every chunk of the job is terminal (done or
failed).

Inside a chunk the MVA cells are solved by **one** call to
:func:`repro.service.executor.evaluate_mva_batch` -- the vectorized
:func:`repro.core.batch.solve_batch` fixed point -- so one lease
round-trip covers the whole slice; simulation cells take the scalar
retrying path (they are seconds-per-cell, the dispatch overhead is
noise).  Per-cell failure isolation is inherited from the executor
payloads: an unsolvable cell becomes an error payload in the extras
sidecar, never a dead worker.

The same loop runs in two modes:

* as a child **process** (:func:`worker_main`, the parallel path);
* **in-process** (:func:`drain_in_process`), used for the serial /
  fallback path, for bounded partial drains in tests, and by a parent
  whose platform cannot fork.

``chaos_kill`` makes a worker SIGKILL itself *after claiming its first
lease and before completing it* -- the deterministic fault injection
used by the crash/recovery tests and the CI sweep-smoke job.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
from pathlib import Path
from typing import Any

from repro.sweepq.journal import Lease, SweepJournal
from repro.sweepq.store import ResultStore

#: Idle sleep while other workers hold the remaining leases.
POLL_INTERVAL = 0.05


class _Heartbeat:
    """Extends one lease on a timer until stopped."""

    def __init__(self, journal: SweepJournal, job_id: str, lease: Lease,
                 lease_ttl: float):
        self._journal = journal
        self._job_id = job_id
        self._lease = lease
        self._ttl = lease_ttl
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        interval = max(self._ttl / 3.0, 0.05)
        while not self._stop.wait(interval):
            if not self._journal.heartbeat(self._job_id, self._lease.index,
                                           self._lease.lease_id, self._ttl):
                return  # lease reassigned: stop renewing, let solve finish

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)


def solve_chunk(tasks: list[Any], start: int, stop: int,
                store: ResultStore,
                sim_retries: int) -> dict[str, Any] | None:
    """Solve ``tasks[start:stop]`` into the store; return JSON extras.

    MVA cells go through the batch engine in one call (falling back to
    per-cell scalar solves only if the batch engine dies wholesale, so
    a chunk can never fail where scalar cells would have succeeded);
    simulation cells run the scalar retrying path.
    """
    from repro.service.executor import (
        evaluate_mva_batch,
        evaluate_with_retry,
    )

    extras: dict[str, Any] = {}
    mva_indices = [i for i in range(start, stop)
                   if tasks[i].method == "mva"]
    if mva_indices:
        mva_tasks = [tasks[i] for i in mva_indices]
        try:
            values = evaluate_mva_batch(mva_tasks)
        except Exception:  # noqa: BLE001 - engine fallback, not cell errors
            values = [evaluate_with_retry(task, sim_retries)
                      for task in mva_tasks]
        for index, value in zip(mva_indices, values):
            cell_extras = store.write(index, tasks[index], value)
            if cell_extras is not None:
                extras[str(index)] = cell_extras
    for index in range(start, stop):
        if tasks[index].method == "mva":
            continue
        value = evaluate_with_retry(tasks[index], sim_retries)
        cell_extras = store.write(index, tasks[index], value)
        if cell_extras is not None:
            extras[str(index)] = cell_extras
    # No msync here: MAP_SHARED pages are coherent across processes as
    # written, and on-disk durability of the transport file is not a
    # correctness input (resume rests on the result cache).
    return extras or None


def run_worker_loop(journal: SweepJournal, job_id: str, tasks: list[Any],
                    store: ResultStore, worker_id: str, lease_ttl: float,
                    sim_retries: int, max_attempts: int,
                    chaos_kill: bool = False,
                    max_chunks: int | None = None) -> int:
    """Claim-solve-complete until the job is terminal; returns the
    number of chunks this worker completed.

    ``max_chunks`` bounds the drain (used by tests to simulate a run
    interrupted after N chunks); ``None`` runs to completion.
    """
    completed = 0
    while max_chunks is None or completed < max_chunks:
        lease = journal.claim(job_id, worker_id, lease_ttl,
                              max_attempts=max_attempts)
        if lease is None:
            if journal.unfinished(job_id) == 0:
                break
            time.sleep(POLL_INTERVAL)
            continue
        if chaos_kill:  # pragma: no cover - the process dies here
            # Deterministic fault injection: die holding the lease,
            # exactly as a worker lost mid-solve would.
            os.kill(os.getpid(), signal.SIGKILL)
        heartbeat = _Heartbeat(journal, job_id, lease, lease_ttl)
        try:
            extras = solve_chunk(tasks, lease.start, lease.stop, store,
                                 sim_retries)
        finally:
            heartbeat.stop()
        # A False return is the double-lease rejection: our lease
        # expired mid-solve and the chunk was reassigned; the other
        # worker's results win and ours are simply never read.
        if journal.complete(job_id, lease.index, lease.lease_id,
                            extras=extras):
            completed += 1
    return completed


def drain_in_process(journal: SweepJournal, job_id: str, tasks: list[Any],
                     store: ResultStore, lease_ttl: float = 3600.0,
                     sim_retries: int = 2, max_attempts: int = 5,
                     max_chunks: int | None = None) -> int:
    """Run the worker loop in the calling process (serial path,
    platform fallback, bounded test drains)."""
    return run_worker_loop(journal, job_id, tasks, store,
                           worker_id=f"inproc-{os.getpid()}",
                           lease_ttl=lease_ttl, sim_retries=sim_retries,
                           max_attempts=max_attempts, max_chunks=max_chunks)


def worker_main(journal_path: str, job_id: str, store_path: str,
                n_cells: int, worker_id: str, lease_ttl: float,
                sim_retries: int, max_attempts: int,
                chaos_kill: bool = False) -> None:  # pragma: no cover
    """Child-process entry point (coverage runs in the parent only)."""
    journal = SweepJournal(Path(journal_path))
    tasks = pickle.loads(journal.load_tasks(job_id))
    store = ResultStore.attach(store_path, n_cells)
    try:
        run_worker_loop(journal, job_id, tasks, store, worker_id,
                        lease_ttl, sim_retries, max_attempts,
                        chaos_kill=chaos_kill)
    finally:
        store.close()
