"""The resumable sharded sweep queue.

:class:`SweepQueue` owns one state directory holding a
:class:`~repro.sweepq.journal.SweepJournal` (SQLite) plus one
shared-memory :class:`~repro.sweepq.store.ResultStore` file per job.
``submit`` shards a task list into content-addressed chunks and
journals them; ``run`` drives a job to completion with any number of
worker processes and returns every cell value in task order.

Durability story (what survives a kill at any point):

* the **journal** records the chunk table and every lease transition;
* each completed cell is written through the shared
  :class:`repro.service.cache.ResultCache` (flushed once per chunk), so
  a killed-and-restarted sweep answers finished chunks from the cache
  and only re-solves the rest -- ``run`` on an existing job *is* the
  resume operation, there is no separate code path;
* a done chunk whose cached cells were evicted in the meantime is
  detected at resume and silently requeued (``reset_chunk``), so the
  cache is a performance layer, never a correctness dependency.

Within one ``run`` the parent is the **sole cache writer**: workers
write numeric results into the shared store, the parent drains done
chunks into the cache as the journal reports them.  Workers therefore
never contend on the cache file, and a torn cache write cannot happen
mid-sweep.

Determinism: values come back indexed by task position, workers solve
chunks with the same engines the serial executor uses, and the
shared-memory transport is bit-exact -- so row order and bytes are
identical to serial scalar execution regardless of worker count, chunk
size, or crash/resume history (enforced by ``tests/test_determinism.py``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from typing import Any

from repro.service.cache import ResultCache
from repro.service.metrics import MetricsRegistry
from repro.sweepq.chunks import DEFAULT_CHUNK_SIZE, chunk_tasks
from repro.sweepq.journal import (
    DONE,
    FAILED,
    ChunkRecord,
    SweepJournal,
)
from repro.sweepq.store import ResultStore
from repro.sweepq.worker import drain_in_process, worker_main

#: Parent supervision poll while workers hold leases.
_SUPERVISE_INTERVAL = 0.05


@dataclass(frozen=True)
class QueueOutcome:
    """Everything ``run`` knows once a job is terminal."""

    job_id: str
    #: Cell values in task order (cache-value dicts; error payloads for
    #: cells of failed chunks).
    values: list[dict[str, Any]]
    #: True where the value was answered without solving in this run
    #: (cache precheck or a previous run's completed chunk).
    cached: list[bool]
    #: Journal progress counters at completion (queued/leased/done/
    #: failed/requeues/recovered plus cell totals).
    counters: dict[str, int]
    mode: str  # "chunked" | "chunked-inprocess"
    workers: int
    wall_seconds: float


class SweepQueue:
    """Journal-backed, resumable, chunk-leasing sweep runner.

    Parameters
    ----------
    state_dir:
        Directory for the journal and result stores.  ``None`` uses a
        private temporary directory (ephemeral queue: still chunked and
        crash-tolerant within the process, but not resumable across
        processes).
    cache:
        Shared :class:`ResultCache`; the durable resume store.  Without
        one, completed work cannot survive a queue restart.
    metrics:
        Optional registry; progress lands in ``repro_sweep_chunks``
        gauges (labelled by state) and recovery counters.
    chunk_size:
        Cells per chunk for new jobs; ``None`` picks
        :func:`~repro.sweepq.chunks.auto_chunk_size` at submit time.
    lease_ttl:
        Seconds a worker lease lives between heartbeats before another
        worker may take the chunk over.
    max_chunk_attempts:
        Leases a chunk may burn before it is marked failed and its
        cells become error rows.
    sim_retries:
        Per-cell retry budget for simulation cells (workers pass it to
        :func:`repro.service.executor.evaluate_with_retry`).
    """

    def __init__(self, state_dir: str | Path | None = None,
                 cache: ResultCache | None = None,
                 metrics: MetricsRegistry | None = None,
                 chunk_size: int | None = None,
                 lease_ttl: float = 15.0,
                 max_chunk_attempts: int = 5,
                 sim_retries: int = 2):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl!r}")
        if max_chunk_attempts < 1:
            raise ValueError("max_chunk_attempts must be >= 1, "
                             f"got {max_chunk_attempts!r}")
        self._tmp: tempfile.TemporaryDirectory | None = None
        if state_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-sweepq-")
            state_dir = self._tmp.name
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal = SweepJournal(self.state_dir / "journal.db")
        self.cache = cache
        self.metrics = metrics
        self.chunk_size = chunk_size
        self.lease_ttl = lease_ttl
        self.max_chunk_attempts = max_chunk_attempts
        self.sim_retries = sim_retries

    def close(self) -> None:
        """Release the journal and drop the private temporary state
        directory, if any."""
        self.journal.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    # -- job lifecycle ---------------------------------------------------

    def submit(self, tasks: list[Any], job_id: str | None = None,
               chunk_size: int | None = None,
               spec_doc: dict[str, Any] | None = None) -> str:
        """Journal a new job; returns its id.  Chunk layout is fixed
        here and never re-derived (resume sees the identical table)."""
        if not tasks:
            raise ValueError("cannot submit an empty task list")
        job_id = job_id or uuid.uuid4().hex[:12]
        size = chunk_size or self.chunk_size or DEFAULT_CHUNK_SIZE
        chunks = chunk_tasks(tasks, size)
        self.journal.create_job(job_id, pickle.dumps(tasks), chunks,
                                chunk_size=size, spec=spec_doc)
        return job_id

    def tasks_for(self, job_id: str) -> list[Any]:
        """The job's task list, exactly as submitted (canonical order)."""
        return pickle.loads(self.journal.load_tasks(job_id))

    def progress(self, job_id: str) -> dict[str, Any]:
        """Journal counters plus job state, for status endpoints."""
        job = self.journal.get_job(job_id)
        counters = self.journal.counters(job_id)
        return {"job_id": job_id, "state": job.state,
                "chunk_size": job.chunk_size,
                "total_cells": job.total_cells, **counters}

    # -- running ---------------------------------------------------------

    def run_tasks(self, tasks: list[Any], workers: int = 1,
                  chunk_size: int | None = None,
                  precheck_cache: bool = True) -> QueueOutcome:
        """``submit`` + ``run`` in one call (the executor's entry)."""
        job_id = self.submit(tasks, chunk_size=chunk_size)
        return self.run(job_id, workers=workers,
                        precheck_cache=precheck_cache, _tasks=tasks)

    def run(self, job_id: str, workers: int = 1, chaos_kill: int = 0,
            precheck_cache: bool = True,
            _tasks: list[Any] | None = None) -> QueueOutcome:
        """Drive ``job_id`` to a terminal state and collect every value.

        Calling ``run`` on a partially finished job resumes it: done
        chunks are answered from the result cache (requeued if evicted)
        and only the remainder is solved.  ``chaos_kill`` marks that
        many workers to SIGKILL themselves after their first claim --
        the fault-injection hook used by tests and the CI smoke job.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        started = time.perf_counter()
        # ``_tasks`` skips the journal round-trip when the caller just
        # submitted the job and still holds the canonical task list.
        tasks = _tasks if _tasks is not None else self.tasks_for(job_id)
        self.journal.set_job_state(job_id, "running")
        values: dict[int, dict[str, Any]] = {}
        cached_flags = [False] * len(tasks)
        drained: set[int] = set()

        self._resume_done_chunks(job_id, tasks, values, cached_flags,
                                 drained)
        if precheck_cache:
            self._precheck(job_id, tasks, values, cached_flags, drained)
        self._publish_progress(job_id)

        mode = "chunked-inprocess"
        store: ResultStore | None = None
        if self.journal.unfinished(job_id) > 0:
            store = ResultStore.create(self._store_path(job_id), len(tasks))
            try:
                if workers > 1 or chaos_kill > 0:
                    mode = self._run_workers(job_id, tasks, store, workers,
                                             chaos_kill, values, drained)
                else:
                    drain_in_process(
                        self.journal, job_id, tasks, store,
                        lease_ttl=max(self.lease_ttl, 3600.0),
                        sim_retries=self.sim_retries,
                        max_attempts=self.max_chunk_attempts)
                self._drain(job_id, tasks, store, values, drained)
            finally:
                store.close()

        self._absorb_failed_chunks(job_id, tasks, values)
        self.journal.set_job_state(job_id, "done")
        self._publish_progress(job_id)
        missing = [i for i in range(len(tasks)) if i not in values]
        if missing:  # pragma: no cover - journal/state invariant breach
            raise RuntimeError(
                f"job {job_id}: {len(missing)} cells missing after drain")
        return QueueOutcome(
            job_id=job_id,
            values=[values[i] for i in range(len(tasks))],
            cached=cached_flags,
            counters=self.journal.counters(job_id),
            mode=mode, workers=workers,
            wall_seconds=time.perf_counter() - started)

    def process_chunks(self, job_id: str, limit: int) -> dict[str, int]:
        """Drain up to ``limit`` chunks in-process, persisting results
        to the cache, then stop.  Simulates an interrupted run (tests)
        and supports incremental draining of very large jobs."""
        tasks = self.tasks_for(job_id)
        store = ResultStore.create(self._store_path(job_id), len(tasks))
        try:
            drain_in_process(
                self.journal, job_id, tasks, store,
                lease_ttl=max(self.lease_ttl, 3600.0),
                sim_retries=self.sim_retries,
                max_attempts=self.max_chunk_attempts, max_chunks=limit)
            self._drain(job_id, tasks, store, values={}, drained=set())
        finally:
            store.close()
        return self.journal.counters(job_id)

    # -- internals -------------------------------------------------------

    def _store_path(self, job_id: str) -> Path:
        return self.state_dir / f"{job_id}.results"

    def _chunk_members(self, tasks: list[Any],
                       chunk: ChunkRecord) -> range:
        return range(chunk.start, chunk.stop)

    def _resume_done_chunks(self, job_id: str, tasks: list[Any],
                            values: dict[int, dict[str, Any]],
                            cached_flags: list[bool],
                            drained: set[int]) -> None:
        """Answer previously completed chunks from the cache; requeue
        any whose cached cells were evicted."""
        for chunk in self.journal.chunk_rows(job_id):
            if chunk.state != DONE:
                continue
            hits: list[dict[str, Any]] = []
            if self.cache is not None:
                for index in self._chunk_members(tasks, chunk):
                    hit = self.cache.get(tasks[index].key)
                    if hit is None:
                        break
                    hits.append(hit)
            if len(hits) < chunk.stop - chunk.start:
                self.journal.reset_chunk(job_id, chunk.index)
                continue
            for index, hit in zip(self._chunk_members(tasks, chunk), hits):
                values[index] = hit
                cached_flags[index] = True
            drained.add(chunk.index)

    def _precheck(self, job_id: str, tasks: list[Any],
                  values: dict[int, dict[str, Any]],
                  cached_flags: list[bool], drained: set[int]) -> None:
        """Complete queued chunks whose cells are all cache-answered.

        All-or-nothing per chunk: a partial hit still solves the whole
        chunk (the batch engine makes the marginal cells nearly free,
        and chunk state stays binary)."""
        if self.cache is None:
            return
        for chunk in self.journal.chunk_rows(job_id):
            if chunk.state != "queued":
                continue
            hits = []
            for index in self._chunk_members(tasks, chunk):
                hit = self.cache.get(tasks[index].key)
                if hit is None:
                    break
                hits.append(hit)
            if len(hits) < chunk.stop - chunk.start:
                continue
            if self.journal.mark_done_cached(job_id, chunk.index):
                for index, hit in zip(self._chunk_members(tasks, chunk),
                                      hits):
                    values[index] = hit
                    cached_flags[index] = True
                drained.add(chunk.index)

    def _run_workers(self, job_id: str, tasks: list[Any],
                     store: ResultStore, workers: int, chaos_kill: int,
                     values: dict[int, dict[str, Any]],
                     drained: set[int]) -> str:
        """Spawn worker processes and supervise them to completion.

        Dead workers (chaos or genuine) are respawned while the job has
        unfinished chunks, up to a bounded budget; past the budget the
        parent drains the remainder in-process, so ``run`` terminates
        even on a platform that keeps killing children."""
        ctx = get_context()
        try:
            procs = []
            for rank in range(workers):
                procs.append(self._spawn(ctx, job_id, store, len(tasks),
                                         rank, chaos_kill=rank < chaos_kill))
        except (OSError, PermissionError):
            # The platform cannot give us processes at all: solve
            # everything in the parent instead.
            drain_in_process(self.journal, job_id, tasks, store,
                             lease_ttl=max(self.lease_ttl, 3600.0),
                             sim_retries=self.sim_retries,
                             max_attempts=self.max_chunk_attempts)
            return "chunked-inprocess"

        respawn_budget = 2 * workers + 2
        rank = workers
        try:
            while self.journal.unfinished(job_id) > 0:
                self._drain(job_id, tasks, store, values, drained)
                self._publish_progress(job_id)
                procs = [p for p in procs if p.is_alive()]
                if not procs:
                    if respawn_budget <= 0:
                        # Children keep dying: finish in the parent so
                        # the sweep still terminates deterministically.
                        drain_in_process(
                            self.journal, job_id, tasks, store,
                            lease_ttl=max(self.lease_ttl, 3600.0),
                            sim_retries=self.sim_retries,
                            max_attempts=self.max_chunk_attempts)
                        break
                    respawn_budget -= 1
                    try:
                        procs.append(self._spawn(ctx, job_id, store,
                                                 len(tasks), rank))
                    except (OSError, PermissionError):
                        respawn_budget = 0
                    rank += 1
                    continue
                time.sleep(_SUPERVISE_INTERVAL)
        finally:
            for proc in procs:
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - stuck worker
                    proc.terminate()
                    proc.join(timeout=5.0)
        return "chunked"

    def _spawn(self, ctx: Any, job_id: str, store: ResultStore,
               n_cells: int, rank: int, chaos_kill: bool = False) -> Any:
        proc = ctx.Process(
            target=worker_main,
            args=(str(self.journal.path), job_id, str(store.path), n_cells,
                  f"worker-{os.getpid()}-{rank}", self.lease_ttl,
                  self.sim_retries, self.max_chunk_attempts, chaos_kill),
            daemon=True)
        proc.start()
        return proc

    def _drain(self, job_id: str, tasks: list[Any], store: ResultStore,
               values: dict[int, dict[str, Any]],
               drained: set[int]) -> None:
        """Pull newly completed chunks out of the shared store: decode
        each cell, write it through the cache (one flush per chunk)."""
        for chunk in self.journal.chunk_rows(job_id):
            if chunk.state != DONE or chunk.index in drained:
                continue
            if chunk.source != "worker":
                continue
            extras = chunk.extras or {}
            for index in self._chunk_members(tasks, chunk):
                value = store.read(index, tasks[index],
                                   extras.get(str(index)))
                values[index] = value
                if self.cache is not None and value.get("error") is None:
                    self.cache.put(tasks[index].key, value)
            if self.cache is not None:
                self.cache.flush()
            drained.add(chunk.index)

    def _absorb_failed_chunks(self, job_id: str, tasks: list[Any],
                              values: dict[int, dict[str, Any]]) -> None:
        """Failed chunks become per-cell error payloads (the executor
        resolves them to error rows exactly like a dead cell)."""
        for chunk in self.journal.chunk_rows(job_id):
            if chunk.state != FAILED:
                continue
            message = chunk.error or "chunk abandoned"
            for index in self._chunk_members(tasks, chunk):
                values[index] = {
                    "error": {
                        "type": "ChunkFailedError",
                        "message": message,
                        "method": tasks[index].method,
                    },
                    "attempts": chunk.attempts,
                    "elapsed_s": 0.0,
                }

    def _publish_progress(self, job_id: str) -> None:
        if self.metrics is None:
            return
        counters = self.journal.counters(job_id)
        gauge = self.metrics.gauge(
            "repro_sweep_chunks",
            "Chunk states of the most recently progressed sweep job.")
        for state in ("queued", "leased", "done", "failed"):
            gauge.labels(state=state).set(counters[state])
        self.metrics.gauge(
            "repro_sweep_cells_done",
            "Cells completed in the most recently progressed sweep job.",
        ).set(counters["cells_done"])
        self.metrics.gauge(
            "repro_sweep_chunks_recovered",
            "Done chunks that needed a lease takeover (crash recovery).",
        ).set(counters["recovered"])
