"""repro.sweepq -- resumable sharded sweep queue.

Shards a sweep into content-addressed chunks, journals them in SQLite,
leases them to worker processes (heartbeats, expiry-requeue, bounded
attempts), solves each chunk with one vectorized batch-engine call, and
transports results over a shared-memory NumPy store.  See
``docs/sweeps.md`` for the model and semantics.
"""

from repro.sweepq.chunks import (
    DEFAULT_CHUNK_SIZE,
    Chunk,
    auto_chunk_size,
    chunk_key,
    chunk_tasks,
)
from repro.sweepq.journal import (
    ChunkRecord,
    JobRecord,
    Lease,
    SweepJournal,
    UnknownJobError,
)
from repro.sweepq.queue import QueueOutcome, SweepQueue
from repro.sweepq.store import ResultStore
from repro.sweepq.worker import drain_in_process, solve_chunk, worker_main

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "Chunk",
    "ChunkRecord",
    "JobRecord",
    "Lease",
    "QueueOutcome",
    "ResultStore",
    "SweepJournal",
    "SweepQueue",
    "UnknownJobError",
    "auto_chunk_size",
    "chunk_key",
    "chunk_tasks",
    "drain_in_process",
    "solve_chunk",
    "worker_main",
]
