"""LRU set-associative caches with write-invalidate coherence.

The cache model is deliberately protocol-agnostic: it implements the
*state a measurement study needs* -- residency, dirtiness, invalidation
on remote writes, dirty supply, dirty eviction -- without committing to
one of the paper's five protocols, because the Appendix-A parameters
(h, amod, csupply, wb_csupply, rep) are defined at exactly that level.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheLine:
    """One resident block."""

    block: int
    dirty: bool = False


@dataclass(frozen=True)
class AccessResult:
    """What one cache access did."""

    hit: bool
    was_dirty: bool            # block was dirty before this access (amod)
    evicted_block: int | None  # victim block address, if a miss evicted one
    evicted_dirty: bool        # victim needed a write-back (rep)


class SetAssociativeCache:
    """A single LRU set-associative cache over block addresses."""

    def __init__(self, n_sets: int, associativity: int):
        if n_sets < 1 or associativity < 1:
            raise ValueError("n_sets and associativity must be >= 1")
        self.n_sets = n_sets
        self.associativity = associativity
        # Per set: list of CacheLine, most-recently-used last.
        self._sets: list[list[CacheLine]] = [[] for _ in range(n_sets)]

    def _set_of(self, block: int) -> list[CacheLine]:
        return self._sets[block % self.n_sets]

    def _find(self, block: int) -> CacheLine | None:
        for line in self._set_of(block):
            if line.block == block:
                return line
        return None

    def contains(self, block: int) -> bool:
        return self._find(block) is not None

    def is_dirty(self, block: int) -> bool:
        line = self._find(block)
        return line is not None and line.dirty

    def access(self, block: int, is_write: bool) -> AccessResult:
        """Reference a block, filling and evicting as needed (LRU)."""
        lines = self._set_of(block)
        line = self._find(block)
        if line is not None:
            was_dirty = line.dirty
            lines.remove(line)
            lines.append(line)  # refresh recency
            if is_write:
                line.dirty = True
            return AccessResult(hit=True, was_dirty=was_dirty,
                                evicted_block=None, evicted_dirty=False)
        evicted_block = None
        evicted_dirty = False
        if len(lines) >= self.associativity:
            victim = lines.pop(0)
            evicted_block = victim.block
            evicted_dirty = victim.dirty
        lines.append(CacheLine(block=block, dirty=is_write))
        return AccessResult(hit=False, was_dirty=False,
                            evicted_block=evicted_block,
                            evicted_dirty=evicted_dirty)

    def invalidate(self, block: int) -> bool:
        """Drop a block (remote write); returns True if it was resident."""
        line = self._find(block)
        if line is None:
            return False
        self._set_of(block).remove(line)
        return True

    def clean(self, block: int) -> None:
        """Clear the dirty bit (the block was written back / supplied)."""
        line = self._find(block)
        if line is not None:
            line.dirty = False

    @property
    def occupancy(self) -> int:
        return sum(len(lines) for lines in self._sets)


@dataclass(frozen=True)
class CoherentAccess:
    """One access through the coherent multi-cache system."""

    result: AccessResult
    #: Other caches holding the block at access time (before coherence).
    holders: tuple[int, ...]
    #: A holder had the block dirty (would supply/flush it).
    supplier_dirty: bool
    #: Copies invalidated by this access (write-invalidate).
    invalidated: tuple[int, ...]


class CoherentCacheSystem:
    """N private caches kept consistent by write-invalidation.

    Semantics match the abstraction level shared by all five protocols:
    reads replicate blocks; a write leaves exactly one (dirty) copy; a
    dirty remote copy encountered on a miss is observed as a dirty
    supplier (wb_csupply) and cleaned (Write-Once flush).
    """

    def __init__(self, n_caches: int, n_sets: int, associativity: int):
        if n_caches < 1:
            raise ValueError("n_caches must be >= 1")
        self.caches = [SetAssociativeCache(n_sets, associativity)
                       for _ in range(n_caches)]

    def holders_of(self, block: int, except_cpu: int | None = None) -> list[int]:
        return [i for i, cache in enumerate(self.caches)
                if i != except_cpu and cache.contains(block)]

    def access(self, cpu: int, block: int, is_write: bool) -> CoherentAccess:
        cache = self.caches[cpu]
        holders = self.holders_of(block, except_cpu=cpu)
        supplier_dirty = any(self.caches[i].is_dirty(block) for i in holders)
        will_hit = cache.contains(block)

        invalidated: list[int] = []
        if is_write:
            # Write-invalidate: every other copy dies (on the bus this is
            # the write-word/invalidate broadcast or the read-mod).
            for i in holders:
                self.caches[i].invalidate(block)
                invalidated.append(i)
        elif not will_hit and supplier_dirty:
            # Read miss served while a dirty copy exists: the holder
            # flushes (Write-Once) and its copy becomes clean.
            for i in holders:
                self.caches[i].clean(block)

        result = cache.access(block, is_write)
        return CoherentAccess(result=result, holders=tuple(holders),
                              supplier_dirty=supplier_dirty,
                              invalidated=tuple(invalidated))

    def check_coherence(self) -> None:
        """Invariant: a dirty block has exactly one holder."""
        seen_dirty: dict[int, int] = {}
        for i, cache in enumerate(self.caches):
            for lines in cache._sets:
                for line in lines:
                    if line.dirty:
                        assert line.block not in seen_dirty, (
                            f"block {line.block} dirty in caches "
                            f"{seen_dirty[line.block]} and {i}")
                        seen_dirty[line.block] = i
