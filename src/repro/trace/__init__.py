"""Workload measurement: synthetic traces -> Appendix-A parameters.

The paper's conclusion: "The model can be put to good use for
evaluating the protocols more thoroughly -- all that is needed are
workload measurement studies to aid in the assignment of parameter
values."  This package is that measurement pipeline:

* :class:`SyntheticTraceGenerator` -- a multiprocessor address-trace
  generator with per-stream regions (private / shared read-only /
  shared-writable), hot-set locality, and seeded determinism;
* :class:`SetAssociativeCache` / :class:`CoherentCacheSystem` -- an
  LRU set-associative cache model with write-invalidate coherence and
  dirty-bit tracking across N caches;
* :class:`WorkloadEstimator` -- replays a trace through the cache
  system and measures every Appendix-A parameter (hit rates, read
  mixes, already-modified rates, cache-supply and supplier-dirty
  probabilities, replacement write-back rates), returning a
  :class:`~repro.workload.parameters.WorkloadParameters` ready for the
  MVA.

End-to-end use: ``examples/trace_calibration.py``.
"""

from repro.trace.generator import (
    GeneratorConfig,
    MemoryReference,
    StreamKind,
    SyntheticTraceGenerator,
)
from repro.trace.cache_model import CoherentCacheSystem, SetAssociativeCache
from repro.trace.estimator import EstimationReport, WorkloadEstimator

__all__ = [
    "CoherentCacheSystem",
    "EstimationReport",
    "GeneratorConfig",
    "MemoryReference",
    "SetAssociativeCache",
    "StreamKind",
    "SyntheticTraceGenerator",
    "WorkloadEstimator",
]
