"""Measure Appendix-A workload parameters from a trace.

Replays a synthetic (or recorded) reference trace through the coherent
cache system and tallies exactly the statistics the paper's workload
model parameterizes:

=================  =====================================================
parameter          measured as
=================  =====================================================
p_private/sro/sw   stream mix of the trace
h_<stream>         hits / references, per stream
r_private, r_sw    reads / references, per stream
amod_<stream>      write hits that found the block already dirty
csupply_<stream>   misses that found a copy in some other cache
wb_csupply         supplied misses whose supplier copy was dirty
rep_p, rep_sw      misses whose victim needed a write-back, per the
                   *victim's* stream
=================  =====================================================
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.trace.cache_model import CoherentCacheSystem
from repro.trace.generator import MemoryReference, StreamKind
from repro.workload.parameters import WorkloadParameters


def _ratio(num: int, den: int, default: float = 0.0) -> float:
    return num / den if den > 0 else default


@dataclass
class _StreamTally:
    refs: int = 0
    reads: int = 0
    hits: int = 0
    write_hits: int = 0
    write_hits_dirty: int = 0
    misses: int = 0
    misses_supplied: int = 0
    misses_supplier_dirty: int = 0
    victims: int = 0
    victims_dirty: int = 0


@dataclass(frozen=True)
class EstimationReport:
    """Measured parameters plus the raw tallies behind them."""

    workload: WorkloadParameters
    references: int
    per_stream: dict[StreamKind, _StreamTally] = field(repr=False, default_factory=dict)

    def summary(self) -> str:
        w = self.workload
        return (f"{self.references} references: "
                f"mix {w.p_private:.3f}/{w.p_sro:.3f}/{w.p_sw:.3f}, "
                f"h {w.h_private:.3f}/{w.h_sro:.3f}/{w.h_sw:.3f}, "
                f"csupply {w.csupply_sro:.3f}/{w.csupply_sw:.3f}, "
                f"wb_csupply {w.wb_csupply:.3f}, "
                f"rep {w.rep_p:.3f}/{w.rep_sw:.3f}")


class WorkloadEstimator:
    """Accumulates trace statistics into WorkloadParameters."""

    def __init__(self, system: CoherentCacheSystem,
                 classify_block: "callable[[int], StreamKind]",
                 tau: float = 2.5):
        self.system = system
        self.classify_block = classify_block
        self.tau = tau
        self._tallies = {kind: _StreamTally() for kind in StreamKind}
        self._references = 0

    def observe(self, ref: MemoryReference) -> None:
        """Feed one reference through the caches and record it."""
        outcome = self.system.access(ref.cpu, ref.block, ref.is_write)
        tally = self._tallies[ref.stream]
        tally.refs += 1
        self._references += 1
        if not ref.is_write:
            tally.reads += 1
        result = outcome.result
        if result.hit:
            tally.hits += 1
            if ref.is_write:
                tally.write_hits += 1
                if result.was_dirty:
                    tally.write_hits_dirty += 1
        else:
            tally.misses += 1
            if outcome.holders:
                tally.misses_supplied += 1
                if outcome.supplier_dirty:
                    tally.misses_supplier_dirty += 1
            if result.evicted_block is not None:
                victim_stream = self.classify_block(result.evicted_block)
                victim_tally = self._tallies[victim_stream]
                victim_tally.victims += 1
                if result.evicted_dirty:
                    victim_tally.victims_dirty += 1

    def observe_trace(self, trace: Iterable[MemoryReference]) -> None:
        for ref in trace:
            self.observe(ref)

    @property
    def references(self) -> int:
        return self._references

    def estimate(self) -> EstimationReport:
        """The measured WorkloadParameters (requires a non-empty trace)."""
        if self._references == 0:
            raise ValueError("no references observed yet")
        t = self._tallies
        priv, sro, sw = (t[StreamKind.PRIVATE], t[StreamKind.SRO],
                         t[StreamKind.SW])
        total = self._references

        supplied = sro.misses_supplied + sw.misses_supplied
        supplier_dirty = (sro.misses_supplier_dirty
                          + sw.misses_supplier_dirty)
        workload = WorkloadParameters(
            tau=self.tau,
            p_private=_ratio(priv.refs, total),
            p_sro=_ratio(sro.refs, total),
            p_sw=_ratio(sw.refs, total),
            h_private=_ratio(priv.hits, priv.refs, default=1.0),
            h_sro=_ratio(sro.hits, sro.refs, default=1.0),
            h_sw=_ratio(sw.hits, sw.refs, default=1.0),
            r_private=_ratio(priv.reads, priv.refs, default=1.0),
            r_sw=_ratio(sw.reads, sw.refs, default=1.0),
            amod_private=_ratio(priv.write_hits_dirty, priv.write_hits),
            amod_sw=_ratio(sw.write_hits_dirty, sw.write_hits),
            csupply_sro=_ratio(sro.misses_supplied, sro.misses),
            csupply_sw=_ratio(sw.misses_supplied, sw.misses),
            wb_csupply=_ratio(supplier_dirty, supplied),
            rep_p=_ratio(priv.victims_dirty, priv.victims),
            rep_sw=_ratio(sw.victims_dirty, sw.victims),
        )
        return EstimationReport(workload=workload, references=total,
                                per_stream=dict(self._tallies))
