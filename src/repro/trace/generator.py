"""Synthetic multiprocessor address-trace generation.

The address space is partitioned into per-processor private regions,
one shared read-only region, and one shared-writable region (the three
streams of the paper's workload model, following Dubois & Briggs).
Within a region, references exhibit hot-set locality: a configurable
fraction of accesses go to a small hot subset, the standard knob for
dialling in realistic hit rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Iterator

import numpy as np


class StreamKind(enum.Enum):
    """Which stream a reference belongs to (ground truth for estimation)."""

    PRIVATE = "private"
    SRO = "shared-read-only"
    SW = "shared-writable"


@dataclass(frozen=True)
class MemoryReference:
    """One trace record."""

    cpu: int
    block: int          # block-granular address
    is_write: bool
    stream: StreamKind


@dataclass(frozen=True)
class GeneratorConfig:
    """Trace-generation parameters.

    Stream selection follows the Appendix-A mix; region sizes and the
    locality knobs determine the hit rates the cache model will see
    (they are *emergent*, unlike the MVA's h parameters -- that is the
    point of the calibration pipeline).
    """

    n_processors: int = 4
    p_private: float = 0.95
    p_sro: float = 0.03
    p_sw: float = 0.02
    r_private: float = 0.7
    r_sw: float = 0.5
    private_blocks: int = 4096
    sro_blocks: int = 1024
    sw_blocks: int = 256
    hot_fraction: float = 0.05
    hot_probability: float = 0.9
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("n_processors must be >= 1")
        total = self.p_private + self.p_sro + self.p_sw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"stream mix must sum to 1, got {total}")
        for name in ("r_private", "r_sw", "hot_fraction", "hot_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        for name in ("private_blocks", "sro_blocks", "sw_blocks"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


class SyntheticTraceGenerator:
    """Seeded generator of :class:`MemoryReference` streams.

    Block-address layout (disjoint by construction):
    ``[0, n*private)`` per-processor private regions, then the sro
    region, then the sw region.
    """

    def __init__(self, config: GeneratorConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        n = config.n_processors
        self._sro_base = n * config.private_blocks
        self._sw_base = self._sro_base + config.sro_blocks

    def stream_of(self, block: int) -> StreamKind:
        """Classify a block address back to its stream."""
        if block < self._sro_base:
            return StreamKind.PRIVATE
        if block < self._sw_base:
            return StreamKind.SRO
        return StreamKind.SW

    def _pick_block(self, base: int, size: int) -> int:
        cfg = self.config
        hot_size = max(1, int(size * cfg.hot_fraction))
        if self._rng.random() < cfg.hot_probability:
            return base + int(self._rng.integers(hot_size))
        return base + int(self._rng.integers(size))

    def reference(self, cpu: int) -> MemoryReference:
        """One reference from one processor."""
        cfg = self.config
        u = self._rng.random()
        if u < cfg.p_private:
            base = cpu * cfg.private_blocks
            block = self._pick_block(base, cfg.private_blocks)
            is_write = self._rng.random() >= cfg.r_private
            stream = StreamKind.PRIVATE
        elif u < cfg.p_private + cfg.p_sro:
            block = self._pick_block(self._sro_base, cfg.sro_blocks)
            is_write = False
            stream = StreamKind.SRO
        else:
            block = self._pick_block(self._sw_base, cfg.sw_blocks)
            is_write = self._rng.random() >= cfg.r_sw
            stream = StreamKind.SW
        return MemoryReference(cpu=cpu, block=block, is_write=is_write,
                               stream=stream)

    def trace(self, length: int) -> Iterator[MemoryReference]:
        """An interleaved trace: each reference from a random processor
        (round-robin interleaving is available via ``trace_round_robin``)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        n = self.config.n_processors
        for _ in range(length):
            yield self.reference(int(self._rng.integers(n)))

    def trace_round_robin(self, length: int) -> Iterator[MemoryReference]:
        """Deterministic processor interleaving (cpu = i mod N)."""
        if length < 0:
            raise ValueError("length must be non-negative")
        n = self.config.n_processors
        for i in range(length):
            yield self.reference(i % n)
