"""The invariant checker: paper-level laws as executable audits.

Each ``audit_*`` function inspects one kind of object -- derived model
inputs, a solved MVA fixed point, solver diagnostics, a simulation
result, an N-sweep of reports, the protocol state machine -- against
the laws the paper implies, and returns structured
:class:`~repro.verify.violations.Violation` records instead of raising.
The full catalog (law identifier -> paper reference -> tolerance) is
documented in ``docs/verification.md``; identifiers are stable so
violations can be counted per-law in metrics and CI artifacts.

The audits are *independent re-derivations* where possible: the
fixed-point audit re-runs :meth:`EquationSystem.step` and re-states the
Little's-law identities (equations 6, 7, 12) from the step
coefficients, so a bug in the solver cannot hide behind itself.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.core.equations import EquationSystem, ModelState
from repro.core.metrics import PerformanceReport
from repro.core.solver import SolverDiagnostics
from repro.protocols.machine import CoherenceMachine, ProcessorOp
from repro.protocols.modifications import Modification, ProtocolSpec
from repro.protocols.states import BlockState
from repro.sim.system import SimulationResult
from repro.verify.violations import Severity, Violation
from repro.workload.derived import CacheInterference, DerivedInputs

#: Absolute tolerance on probability normalization and range checks.
PROB_TOL = 1e-9

#: Absolute tolerance on re-stated equation identities (eqs 6, 7, 12 and
#: the speedup/power definitions) evaluated at a converged fixed point.
IDENTITY_TOL = 1e-6

#: A converged state re-swept once must stay put.  The solver's own
#: tolerance (1e-9) bounds the *damped* residual; the heaviest ladder
#: rung is 0.1, so the undamped distance can be 10x that.  100x gives
#: comfortable slack without masking real drift.
FIXED_POINT_TOL = 1e-7

#: Bounded-violation allowances for the approximate MVA's documented
#: soft spots (test_core_properties.py, EXPERIMENTS.md E1): the eq-6
#: arrival estimate lets deep saturation overshoot the bus-capacity
#: bound and dip throughput by up to ~15 %.
CAPACITY_OVERSHOOT = 1.20
MONOTONE_DIP = 0.85


@dataclass
class Audit:
    """Collects checks and violations for one audited subject."""

    subject: str
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    def check(self, condition: bool, law: str, message: str,
              observed: float | None = None, expected: str | None = None,
              equation: str | None = None,
              severity: Severity = Severity.ERROR,
              **context: object) -> bool:
        """Evaluate one law; record a violation when it fails."""
        self.checks += 1
        if not condition:
            self.violations.append(Violation(
                law=law, subject=self.subject, message=message,
                severity=severity, observed=observed, expected=expected,
                equation=equation, context=dict(context)))
        return condition

    def merge(self, other: "Audit") -> None:
        self.checks += other.checks
        self.violations.extend(other.violations)


def _in_unit(audit: Audit, value: float, law: str, name: str,
             equation: str | None = None) -> None:
    audit.check(-PROB_TOL <= value <= 1.0 + PROB_TOL, law,
                f"{name} out of [0, 1]", observed=value,
                expected="in [0, 1]", equation=equation)


def _utilization(audit: Audit, value: float, name: str,
                 equation: str) -> None:
    """Utilization law with the documented saturation allowance.

    Equations (7) and (12) are stored unclamped, and the approximate
    MVA can push a utilization slightly past 1 in deep saturation (the
    same eq-6 artifact behind the bounded monotonicity dips), so the
    band (1, CAPACITY_OVERSHOOT] is a WARNING and only values past the
    allowance (or negative) are errors.
    """
    audit.check(value >= -PROB_TOL, "utilization-range",
                f"{name} must be >= 0", observed=value, expected=">= 0",
                equation=equation)
    if value > 1.0 + PROB_TOL:
        audit.check(value <= CAPACITY_OVERSHOOT + PROB_TOL,
                    "utilization-range",
                    f"{name} exceeds 1 beyond the "
                    f"{CAPACITY_OVERSHOOT - 1:.0%} saturation allowance",
                    observed=value,
                    expected=f"<= {CAPACITY_OVERSHOOT}",
                    equation=equation)
        audit.check(False, "utilization-saturated",
                    f"{name} exceeds 1 (deep-saturation artifact of the "
                    "approximate MVA)", observed=value, expected="<= 1",
                    equation=equation, severity=Severity.WARNING)
    else:
        audit.checks += 2


# -- derived inputs ------------------------------------------------------


def audit_derived_inputs(inputs: DerivedInputs, subject: str) -> Audit:
    """Laws of the Section 2.3 / Appendix B input derivation."""
    audit = Audit(subject=subject)
    mix = inputs.mix

    audit.check(abs(mix.total - 1.0) <= PROB_TOL,
                "mix-normalized",
                "the twelve reference-event classes must sum to 1",
                observed=mix.total, expected="== 1",
                equation="Section 2.3")
    for name in ("prh", "prm", "pwh_mod", "pwh_unmod", "pwm", "srh",
                 "srm", "swrh", "swrm", "swh_mod", "swh_unmod", "swm"):
        _in_unit(audit, getattr(mix, name), "mix-class-range",
                 f"mix.{name}", equation="Section 2.3")

    branching = inputs.p_local + inputs.p_bc + inputs.p_rr
    audit.check(abs(branching - 1.0) <= PROB_TOL,
                "branching-normalized",
                "p_local + p_bc + p_rr must sum to 1 (every request is "
                "handled exactly one way)",
                observed=branching, expected="== 1",
                equation="Section 2.3")
    for name in ("p_local", "p_bc", "p_rr"):
        _in_unit(audit, getattr(inputs, name), "branching-range", name,
                 equation="Section 2.3")

    audit.check(inputs.t_read > 0.0, "timing-positive",
                "t_read must be positive", observed=inputs.t_read,
                expected="> 0", equation="Section 2.3")
    audit.check(inputs.t_bc > 0.0, "timing-positive",
                "t_bc must be positive", observed=inputs.t_bc,
                expected="> 0", equation="Section 2.3")

    for name in ("p_csup_rr", "p_csupwb_rr", "p_reqwb_rr"):
        _in_unit(audit, getattr(inputs, name), "conditional-prob-range",
                 name, equation="Section 2.3")
    audit.check(inputs.p_csupwb_rr <= inputs.p_csup_rr + PROB_TOL,
                "supplier-wb-subevent",
                "a supplier write-back requires a cache supplier "
                "(p_csupwb|rr <= p_csup|rr)",
                observed=inputs.p_csupwb_rr,
                expected=f"<= p_csup_rr = {inputs.p_csup_rr:.6g}",
                equation="Section 2.3")

    miss_frac = inputs.sr_miss_frac + inputs.sw_miss_frac
    audit.check(miss_frac <= 1.0 + PROB_TOL, "miss-mix-normalized",
                "conditional shared-miss fractions cannot exceed 1",
                observed=miss_frac, expected="<= 1",
                equation="Appendix B")
    audit.check(inputs.memory_ops_per_request() >= -PROB_TOL,
                "memory-ops-nonnegative",
                "memory operations per request must be >= 0",
                observed=inputs.memory_ops_per_request(),
                expected=">= 0", equation="eq. (12)")
    return audit


def audit_interference(ci: CacheInterference, n: int,
                       subject: str) -> Audit:
    """Laws of the Appendix-B cache-interference quantities."""
    audit = Audit(subject=subject)
    _in_unit(audit, ci.p, "interference-prob-range", "p",
             equation="Appendix B")
    _in_unit(audit, ci.p_prime, "interference-prob-range", "p'",
             equation="Appendix B")
    audit.check(ci.p_prime <= ci.p + PROB_TOL, "interference-subevent",
                "p' (cache tied up for the whole transaction) is a "
                "sub-event of p (cache must act)",
                observed=ci.p_prime, expected=f"<= p = {ci.p:.6g}",
                equation="Appendix B")
    audit.check(ci.t_interference >= 1.0 - PROB_TOL,
                "interference-time-floor",
                "t_interference includes the one-cycle snoop action",
                observed=ci.t_interference, expected=">= 1",
                equation="Appendix B")
    if n <= 1:
        audit.check(ci.p == 0.0, "no-self-interference",
                    "a single-cache system has no cache interference",
                    observed=ci.p, expected="== 0", equation="Appendix B")
    # Equation (13) shape: n_interference is non-negative and monotone
    # in the queue length, bounded by p * Q for Q >= 1 (the geometric
    # partial sum lies under the linear chord there; for Q < 1 Bernoulli
    # reverses and only the asymptote p / (1 - p') bounds it).
    asymptote = (ci.p / (1.0 - ci.p_prime)
                 if ci.p_prime < 1.0 - 1e-12 else math.inf)
    previous = 0.0
    for q in (0.0, 0.5, 1.0, 4.0, 16.0):
        n_int = ci.n_interference(q)
        audit.check(n_int >= -PROB_TOL, "n-interference-range",
                    f"n_interference({q}) must be >= 0", observed=n_int,
                    expected=">= 0", equation="eq. (13)")
        if q >= 1.0:
            audit.check(n_int <= ci.p * q + PROB_TOL,
                        "n-interference-bound",
                        f"n_interference({q}) cannot exceed p * Q",
                        observed=n_int, expected=f"<= {ci.p * q:.6g}",
                        equation="eq. (13)")
        audit.check(n_int <= asymptote + PROB_TOL,
                    "n-interference-asymptote",
                    f"n_interference({q}) cannot exceed p / (1 - p')",
                    observed=n_int, expected=f"<= {asymptote:.6g}",
                    equation="eq. (13)")
        audit.check(n_int >= previous - PROB_TOL,
                    "n-interference-monotone",
                    "n_interference must be monotone in the queue length",
                    observed=n_int, expected=f">= {previous:.6g}",
                    equation="eq. (13)")
        previous = n_int
    return audit


# -- solved fixed points -------------------------------------------------


def audit_state(system: EquationSystem, state: ModelState,
                subject: str) -> Audit:
    """Laws of one converged :class:`ModelState` (the fixed point).

    Re-derives the Little's-law identities (equations 6, 7, 12) from
    the step coefficients and re-runs one equation sweep, so the audit
    does not trust the solver's own arithmetic.
    """
    audit = Audit(subject=subject)
    c = system.coefficients
    n = c.n

    audit.check(state.response is not None, "state-has-response",
                "a solved state must carry a response breakdown",
                equation="eq. (1)")
    if state.response is None:
        return audit
    r = state.response
    r_total = r.total

    # Range laws.
    _utilization(audit, state.u_bus, "U_bus", "eq. (7)")
    _utilization(audit, state.u_mem, "U_mem", "eq. (12)")
    for name, value in (("w_bus", state.w_bus), ("w_mem", state.w_mem),
                        ("q_bus", state.q_bus),
                        ("n_interference", state.n_interference)):
        audit.check(value >= -PROB_TOL, "waiting-nonnegative",
                    f"{name} must be >= 0", observed=value,
                    expected=">= 0", equation="eqs. (5)-(13)")
    for name, value in (("r_local", r.r_local),
                        ("r_broadcast", r.r_broadcast),
                        ("r_remote_read", r.r_remote_read)):
        audit.check(value >= -PROB_TOL, "response-component-nonnegative",
                    f"{name} must be >= 0", observed=value,
                    expected=">= 0", equation="eqs. (2)-(4)")
    audit.check(math.isfinite(r_total) and r_total > 0.0,
                "cycle-time-finite", "R must be finite and positive",
                observed=r_total, expected="finite, > 0",
                equation="eq. (1)")
    audit.check(r_total >= c.tau + c.t_supply - PROB_TOL,
                "cycle-time-floor",
                "R cannot beat the contention-free path tau + T_supply",
                observed=r_total,
                expected=f">= {c.tau + c.t_supply:.6g}",
                equation="eq. (1)")

    # Little's-law / flow identities, re-stated from the coefficients.
    # The stored u_bus was computed from the *previous* iterate's w_mem
    # (and q_bus is blended under damping), so at a converged fixed
    # point the identities hold to the solver tolerance amplified by at
    # most N -- hence the N-scaled slack.
    identity_tol = IDENTITY_TOL * max(1, n)
    bus_demand = c.p_bc * (state.w_mem + c.t_bc) + c.p_rr * c.t_read
    u_bus_expected = n * bus_demand / r_total
    audit.check(abs(u_bus_expected - state.u_bus) <= identity_tol,
                "littles-law-bus",
                "U_bus must equal throughput x bus demand "
                "(N / R x bus service per request)",
                observed=state.u_bus,
                expected=f"== {u_bus_expected:.6g}", equation="eq. (7)")
    u_mem_expected = (n / c.memory_modules * c.memory_ops
                      * c.d_mem / r_total)
    audit.check(abs(u_mem_expected - state.u_mem) <= identity_tol,
                "littles-law-memory",
                "U_mem must equal per-module memory throughput x "
                "memory latency",
                observed=state.u_mem,
                expected=f"== {u_mem_expected:.6g}", equation="eq. (12)")
    q_bus_expected = (n - 1) * (r.r_broadcast + r.r_remote_read) / r_total
    audit.check(abs(q_bus_expected - state.q_bus) <= identity_tol,
                "littles-law-queue",
                "Q_bus must equal the other N-1 customers' probability "
                "of waiting on or holding the bus",
                observed=state.q_bus,
                expected=f"== {q_bus_expected:.6g}", equation="eq. (6)")

    # The state must actually be a fixed point of the equation system.
    residual = system.step(state).distance(state)
    audit.check(residual <= FIXED_POINT_TOL, "fixed-point-residual",
                "a converged state re-swept once must stay put",
                observed=residual, expected=f"<= {FIXED_POINT_TOL:g}",
                equation="Section 3.2")
    return audit


def audit_report(report: PerformanceReport, subject: str) -> Audit:
    """Laws of one :class:`PerformanceReport` (the exported measures)."""
    audit = Audit(subject=subject)
    n = report.n_processors
    r = report.response

    _utilization(audit, report.u_bus, "U_bus", "eq. (7)")
    _utilization(audit, report.u_mem, "U_mem", "eq. (12)")
    audit.check(report.w_bus >= -PROB_TOL, "waiting-nonnegative",
                "w_bus must be >= 0", observed=report.w_bus,
                expected=">= 0", equation="eq. (5)")
    audit.check(report.w_mem >= -PROB_TOL, "waiting-nonnegative",
                "w_mem must be >= 0", observed=report.w_mem,
                expected=">= 0", equation="eq. (11)")
    audit.check(
        -PROB_TOL <= report.p_prime_interference
        <= report.p_interference + PROB_TOL,
        "interference-subevent",
        "p' must stay a sub-event of p in the report",
        observed=report.p_prime_interference,
        expected=f"<= {report.p_interference:.6g}", equation="Appendix B")

    audit.check(0.0 < report.speedup <= n + IDENTITY_TOL,
                "speedup-ceiling", "speedup must lie in (0, N]",
                observed=report.speedup, expected=f"in (0, {n}]",
                equation="Section 4")
    expected_speedup = n * (r.tau + r.t_supply) / r.total
    audit.check(abs(report.speedup - expected_speedup) <= IDENTITY_TOL,
                "speedup-identity",
                "speedup must equal N (tau + T_supply) / R",
                observed=report.speedup,
                expected=f"== {expected_speedup:.6g}",
                equation="Section 4")
    expected_power = n * r.tau / r.total
    audit.check(abs(report.processing_power - expected_power)
                <= IDENTITY_TOL,
                "power-identity",
                "processing power must equal N tau / R",
                observed=report.processing_power,
                expected=f"== {expected_power:.6g}",
                equation="Section 4.4")
    audit.check(report.processing_power <= report.speedup + IDENTITY_TOL,
                "power-below-speedup",
                "processing power excludes the supply cycle, so it "
                "cannot exceed speedup",
                observed=report.processing_power,
                expected=f"<= {report.speedup:.6g}",
                equation="Section 4.4")
    return audit


def audit_diagnostics(diag: SolverDiagnostics, tolerance: float,
                      subject: str) -> Audit:
    """Laws of one :class:`SolverDiagnostics` record."""
    audit = Audit(subject=subject)
    audit.check(diag.iterations >= 1, "iterations-positive",
                "at least one sweep must run", observed=diag.iterations,
                expected=">= 1", equation="Section 3.2")
    if diag.converged:
        audit.check(diag.final_residual < tolerance,
                    "converged-residual",
                    "a converged solve must end under the tolerance",
                    observed=diag.final_residual,
                    expected=f"< {tolerance:g}", equation="Section 3.2")
    audit.check(bool(diag.ladder), "ladder-nonempty",
                "the attempted damping ladder must be recorded",
                equation="Section 3.2")
    audit.check(all(0.0 < f <= 1.0 for f in diag.ladder),
                "damping-range", "damping factors must lie in (0, 1]",
                equation="Section 3.2")
    audit.check(all(b < a + PROB_TOL for a, b in
                    zip(diag.ladder, diag.ladder[1:])),
                "ladder-descending",
                "recovery rungs must be strictly decreasing",
                equation="Section 3.2")
    audit.check(diag.recovered == (len(diag.ladder) > 1),
                "recovered-flag-consistent",
                "recovered must mean more than one ladder rung ran",
                equation="Section 3.2")
    return audit


# -- simulation results --------------------------------------------------


def audit_sim_result(result: SimulationResult, tau: float,
                     t_supply: float, subject: str) -> Audit:
    """Laws of one detailed-simulation run (same physics, measured)."""
    audit = Audit(subject=subject)
    n = result.n_processors

    audit.check(result.requests_measured > 0, "sim-measured",
                "a run must measure at least one request",
                observed=float(result.requests_measured), expected="> 0")
    audit.check(result.elapsed_cycles > 0.0, "sim-measured",
                "measured time must be positive",
                observed=result.elapsed_cycles, expected="> 0")
    _in_unit(audit, result.u_bus, "utilization-range", "U_bus")
    _in_unit(audit, result.u_mem, "utilization-range", "U_mem")
    audit.check(result.w_bus >= -PROB_TOL, "waiting-nonnegative",
                "w_bus must be >= 0", observed=result.w_bus,
                expected=">= 0")
    audit.check(result.q_bus_seen >= -PROB_TOL, "waiting-nonnegative",
                "Q_bus seen at arrival must be >= 0",
                observed=result.q_bus_seen, expected=">= 0")
    audit.check(result.mean_cycle_time >= tau + t_supply - PROB_TOL,
                "cycle-time-floor",
                "measured R cannot beat the contention-free path",
                observed=result.mean_cycle_time,
                expected=f">= {tau + t_supply:.6g}", equation="eq. (1)")
    audit.check(0.0 < result.speedup <= n + IDENTITY_TOL,
                "speedup-ceiling", "measured speedup must lie in (0, N]",
                observed=result.speedup, expected=f"in (0, {n}]",
                equation="Section 4")
    expected_speedup = (n * (tau + t_supply) / result.mean_cycle_time
                        if result.mean_cycle_time else 0.0)
    audit.check(abs(result.speedup - expected_speedup) <= IDENTITY_TOL,
                "speedup-identity",
                "measured speedup must equal N (tau + T_supply) / R",
                observed=result.speedup,
                expected=f"== {expected_speedup:.6g}",
                equation="Section 4")
    audit.check(result.processing_power <= n + IDENTITY_TOL,
                "power-ceiling",
                "summed processor utilizations cannot exceed N",
                observed=result.processing_power, expected=f"<= {n}",
                equation="Section 4.4")
    audit.check(result.speedup_ci_halfwidth >= 0.0, "sim-ci-nonnegative",
                "the CI half-width must be >= 0",
                observed=result.speedup_ci_halfwidth, expected=">= 0")
    return audit


# -- sweep shapes --------------------------------------------------------


def audit_sweep_shape(reports: list[PerformanceReport],
                      subject: str) -> Audit:
    """Shape laws along one N-sweep (same workload and protocol).

    Exact monotonicity is *not* a law of the approximate MVA -- the
    eq-6 arrival estimate lets deep saturation dip throughput by up to
    ~15 % (EXPERIMENTS.md, test_core_properties.py) -- so the audit
    enforces the bounded versions and flags anything past the
    documented allowance.
    """
    audit = Audit(subject=subject)
    ordered = sorted(reports, key=lambda r: r.n_processors)
    audit.check(len({r.n_processors for r in ordered}) == len(ordered),
                "sweep-distinct-sizes",
                "an N-sweep must not repeat system sizes")
    for earlier, later in itertools.pairwise(ordered):
        throughput_e = earlier.n_processors / earlier.cycle_time
        throughput_l = later.n_processors / later.cycle_time
        audit.check(
            throughput_l >= throughput_e * MONOTONE_DIP - PROB_TOL,
            "throughput-monotone",
            f"throughput dropped more than the {1 - MONOTONE_DIP:.0%} "
            f"saturation allowance from N={earlier.n_processors} to "
            f"N={later.n_processors}",
            observed=throughput_l,
            expected=f">= {throughput_e * MONOTONE_DIP:.6g}",
            equation="Section 4.1")
        audit.check(
            later.speedup >= earlier.speedup * MONOTONE_DIP - PROB_TOL,
            "speedup-monotone",
            f"speedup dropped more than the {1 - MONOTONE_DIP:.0%} "
            f"saturation allowance from N={earlier.n_processors} to "
            f"N={later.n_processors}",
            observed=later.speedup,
            expected=f">= {earlier.speedup * MONOTONE_DIP:.6g}",
            equation="Section 4.1")
        audit.check(later.u_bus >= earlier.u_bus - IDENTITY_TOL,
                    "bus-utilization-monotone",
                    "adding processors cannot reduce bus utilization "
                    f"(N={earlier.n_processors} -> "
                    f"N={later.n_processors})",
                    observed=later.u_bus,
                    expected=f">= {earlier.u_bus:.6g}",
                    equation="eq. (7)")
    return audit


def audit_capacity_bound(report: PerformanceReport,
                         inputs: DerivedInputs, subject: str) -> Audit:
    """Speedup against the bus-capacity asymptote (Section 4.1).

    The true system obeys speedup <= (tau + T_supply) / bus demand per
    request; the approximate MVA may overshoot by a bounded amount in
    deep saturation, so the law is the documented 20 % allowance.
    """
    audit = Audit(subject=subject)
    bus_per_request = (inputs.p_bc * inputs.t_bc
                       + inputs.p_rr * inputs.t_read)
    if bus_per_request <= 1e-9:
        return audit
    r = report.response
    bound = (r.tau + r.t_supply) / bus_per_request
    audit.check(report.speedup <= bound * CAPACITY_OVERSHOOT + PROB_TOL,
                "bus-capacity-bound",
                "speedup exceeds the bus-capacity asymptote by more "
                f"than the {CAPACITY_OVERSHOOT - 1:.0%} saturation "
                "allowance",
                observed=report.speedup,
                expected=f"<= {bound * CAPACITY_OVERSHOOT:.6g}",
                equation="Section 4.1")
    return audit


# -- protocol state machine ----------------------------------------------


def audit_protocol_machine(spec: ProtocolSpec, subject: str,
                           n_caches: int = 3,
                           depth: int = 4) -> Audit:
    """Model-check the coherence machine over short access sequences.

    Exhaustively drives a ``n_caches``-cache :class:`CoherenceMachine`
    through every access sequence of the given depth (reads, writes and
    purges from two active caches) and checks, after every step, the
    Section 2.1/2.2 state laws: at most one write-back owner, exclusive
    implies all other copies invalid, shared-dirty only under
    modification 2 (or 3+4), and memory freshness consistent with
    ownership.  The machine asserts the same laws internally; a raised
    ``AssertionError`` is converted to a structured violation, so an
    illegal transition can never pass silently.
    """
    audit = Audit(subject=subject)
    moves = [(cache, op) for cache in (0, 1)
             for op in (ProcessorOp.READ, ProcessorOp.WRITE)]
    moves.append((0, "purge"))
    moves.append((1, "purge"))

    for sequence in itertools.product(moves, repeat=depth):
        machine = CoherenceMachine(spec, n_caches)
        for step, (cache, op) in enumerate(sequence):
            try:
                if op == "purge":
                    machine.purge(cache)
                else:
                    machine.access(cache, op)
            except AssertionError as exc:
                audit.check(False, "protocol-transition",
                            "illegal protocol state transition: "
                            f"{exc} (sequence {sequence[:step + 1]})",
                            equation="Section 2.2")
                break
            owners = [i for i, s in enumerate(machine.states) if s.wback]
            if not audit.check(len(owners) <= 1, "single-owner",
                               "more than one write-back owner after "
                               f"{sequence[:step + 1]}",
                               equation="Section 2.1"):
                break
            exclusive = [i for i, s in enumerate(machine.states)
                         if s.exclusive]
            holders = machine.holders()
            if not audit.check(
                    not exclusive or len(holders) == 1,
                    "exclusive-means-alone",
                    "an exclusive copy coexists with other holders "
                    f"after {sequence[:step + 1]}",
                    equation="Section 2.1"):
                break
            shared_dirty_legal = (
                Modification.CACHE_TO_CACHE_SUPPLY in spec.mods
                or (Modification.WRITE_BROADCAST in spec.mods
                    and Modification.INVALIDATE_INSTEAD_OF_WRITE_WORD
                    in spec.mods))
            if not shared_dirty_legal:
                if not audit.check(
                        BlockState.SHARED_WBACK not in machine.states,
                        "no-shared-dirty",
                        "shared-dirty ownership without modification 2 "
                        f"or 3+4 after {sequence[:step + 1]}",
                        equation="Section 2.2"):
                    break
            if not audit.check(
                    machine.memory_fresh == (len(owners) == 0),
                    "memory-freshness",
                    "memory freshness inconsistent with write-back "
                    f"ownership after {sequence[:step + 1]}",
                    equation="Section 2.1"):
                break
    return audit
