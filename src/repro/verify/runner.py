"""The verification run: tiers, sections, metrics.

``run_verify`` drives every checker in :mod:`repro.verify` over the
full protocol family and folds the results into one
:class:`~repro.verify.violations.VerifyReport`:

* **quick** (< 60 s, the CI push gate): invariant audits on every one
  of the 16 modification combinations x 3 sharing levels x 4 sizes,
  sweep-shape audits, protocol model-checking at depth 3,
  scalar-vs-batch differential at zero tolerance on the same grid, the
  golden-corpus diff, and a seeded all-16 MVA-vs-DES pass at reduced
  sample size.
* **full**: quick, plus deeper protocol model-checking (depth 4),
  larger DES samples at two system sizes, and the Section-5 stress
  corners through the failure-isolating executor.

Every violation is counted in ``repro_verify_violations_total``
(labelled by law and severity) when a metrics registry is supplied;
``repro_verify_checks_total`` counts the laws evaluated, so rates stay
meaningful.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.stress import run_stress
from repro.core.model import CacheMVAModel, build_report
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import all_combinations
from repro.service.executor import CellTask
from repro.service.metrics import MetricsRegistry
from repro.verify import differential, golden, invariants
from repro.verify.invariants import Audit
from repro.verify.violations import VerifyReport
from repro.workload.parameters import SharingLevel, appendix_a_workload

#: The tiers ``run_verify`` understands.
TIERS = ("quick", "full")

#: Sizes audited per (protocol, sharing): degenerate, pre-knee, knee,
#: deep saturation.
AUDIT_SIZES: tuple[int, ...] = (1, 2, 10, 100)

#: DES sample sizes per tier (measured requests / system size).
_DES_QUICK = (8, 4_000)
_DES_FULL_SIZES = (4, 16)
_DES_FULL_REQUESTS = 20_000

#: Fixed seed for the differential DES runs (results are then
#: reproducible and cacheable; the determinism tests pin the same one).
DES_SEED = 1234


def _record(metrics: MetricsRegistry | None, report: VerifyReport,
            audit: Audit, section: str) -> None:
    report.add(audit.violations, audit.checks, section)
    if metrics is None:
        return
    metrics.counter(
        "repro_verify_checks_total",
        "Verification laws evaluated.",
    ).labels(section=section).inc(audit.checks)
    for violation in audit.violations:
        metrics.counter(
            "repro_verify_violations_total",
            "Verification laws violated.",
        ).labels(law=violation.law,
                 severity=violation.severity.value).inc()


def run_verify(tier: str = "quick",
               metrics: MetricsRegistry | None = None,
               golden_path: Path | str = golden.DEFAULT_CORPUS_PATH,
               ) -> VerifyReport:
    """Run every checker at the given tier; never raises on violations."""
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    started = time.perf_counter()
    report = VerifyReport(tier=tier)
    solver = FixedPointSolver(raise_on_divergence=False)
    protocols = all_combinations()

    # -- invariant audits over the whole family ------------------------
    mva_tasks: list[CellTask] = []
    for spec in protocols:
        for level in SharingLevel:
            workload = appendix_a_workload(level)
            model = CacheMVAModel(workload, protocol=spec)
            subject = f"{spec.label} {level.label}"
            _record(metrics, report,
                    invariants.audit_derived_inputs(model.inputs, subject),
                    "derived-inputs")
            reports = []
            for n in AUDIT_SIZES:
                cell_subject = f"{subject} N={n}"
                system = model.system(n)
                _record(metrics, report,
                        invariants.audit_interference(
                            system.interference, n, cell_subject),
                        "interference")
                state, diag = solver.solve(system)
                cell_report = build_report(system, spec.label,
                                           level.label, state, diag)
                _record(metrics, report,
                        invariants.audit_state(system, state,
                                               cell_subject),
                        "fixed-points")
                _record(metrics, report,
                        invariants.audit_report(cell_report,
                                                cell_subject),
                        "fixed-points")
                _record(metrics, report,
                        invariants.audit_diagnostics(
                            diag, solver.tolerance, cell_subject),
                        "fixed-points")
                _record(metrics, report,
                        invariants.audit_capacity_bound(
                            cell_report, model.inputs, cell_subject),
                        "fixed-points")
                reports.append(cell_report)
                mva_tasks.append(CellTask(
                    protocol=spec, sharing_label=level.label,
                    workload=workload, n=n))
            _record(metrics, report,
                    invariants.audit_sweep_shape(reports, subject),
                    "sweep-shape")

    # -- protocol state-machine model checking -------------------------
    depth = 4 if tier == "full" else 3
    for spec in protocols:
        _record(metrics, report,
                invariants.audit_protocol_machine(spec, spec.label,
                                                  depth=depth),
                "protocol-machine")

    # -- differential oracle: scalar vs batch at zero tolerance --------
    _record(metrics, report, differential.diff_scalar_batch(mva_tasks),
            "engine-parity")

    # -- golden corpus -------------------------------------------------
    _record(metrics, report, golden.compare_corpus(golden_path),
            "golden-corpus")

    # -- differential oracle: MVA vs seeded DES ------------------------
    des_cells: list[tuple[int, int]] = [_DES_QUICK]
    if tier == "full":
        des_cells = [(n, _DES_FULL_REQUESTS) for n in _DES_FULL_SIZES]
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    for spec in protocols:
        for n, requests in des_cells:
            task = CellTask(protocol=spec, sharing_label="5%",
                            workload=workload, n=n, method="sim",
                            sim_requests=requests, sim_seed=DES_SEED + n)
            _record(metrics, report, differential.diff_mva_des(task),
                    "mva-vs-des")

    # -- stress corners (full tier): failure isolation -----------------
    if tier == "full":
        audit = Audit(subject="stress-corners")
        stress = run_stress()
        audit.check(stress.isolated, "stress-isolation",
                    "a stress sweep must resolve every cell "
                    "independently (converged or isolated error row)",
                    equation="Section 5")
        audit.check(stress.converged + len(stress.failures)
                    == stress.total, "stress-accounting",
                    "every stress cell must be accounted for",
                    observed=float(stress.converged
                                   + len(stress.failures)),
                    expected=f"== {stress.total}")
        _record(metrics, report, audit, "stress-corners")

    report.elapsed_seconds = time.perf_counter() - started
    return report
