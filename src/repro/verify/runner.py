"""The verification run: tiers, sections, metrics.

``run_verify`` drives every checker in :mod:`repro.verify` over the
full protocol family and folds the results into one
:class:`~repro.verify.violations.VerifyReport`:

* **quick** (< 60 s, the CI push gate): invariant audits on every one
  of the 16 modification combinations x 3 sharing levels x 4 sizes,
  sweep-shape audits, protocol model-checking at depth 3,
  scalar-vs-batch differential at zero tolerance on the same grid, the
  golden-corpus diff, and a seeded all-16 MVA-vs-DES pass at reduced
  sample size.
* **full**: quick, plus deeper protocol model-checking (depth 4),
  larger DES samples at two system sizes (multi-seed through the
  vector engine: the total sample is split over ``_DES_FULL_REPS``
  lockstep replications, so the MVA-vs-DES check also carries an
  across-seed band at a fraction of the scalar engine's wall-clock
  cost), the scalar-vs-vector DES
  statistical-equivalence oracle on representative cells, and the
  Section-5 stress corners through the failure-isolating executor.

Every violation is counted in ``repro_verify_violations_total``
(labelled by law and severity) when a metrics registry is supplied;
``repro_verify_checks_total`` counts the laws evaluated, so rates stay
meaningful.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.stress import run_stress
from repro.core.model import CacheMVAModel, build_report
from repro.core.solver import FixedPointSolver
from repro.protocols.modifications import all_combinations
from repro.service.executor import CellTask
from repro.service.metrics import MetricsRegistry
from repro.verify import differential, golden, invariants
from repro.verify.invariants import Audit
from repro.verify.violations import VerifyReport
from repro.workload.parameters import SharingLevel, appendix_a_workload

#: The tiers ``run_verify`` understands.
TIERS = ("quick", "full")

#: Sizes audited per (protocol, sharing): degenerate, pre-knee, knee,
#: deep saturation.
AUDIT_SIZES: tuple[int, ...] = (1, 2, 10, 100)

#: DES sample sizes per tier (measured requests / system size).
_DES_QUICK = (8, 4_000)
_DES_FULL_SIZES = (4, 16)
_DES_FULL_REQUESTS = 80_000

#: Replications for the full tier's vector-engine DES cells: the
#: ``_DES_FULL_REQUESTS`` total sample is split over this many lockstep
#: replications, buying an across-seed band on top of the point
#: estimate.  Keep the per-replication window (total / reps) at 5000+
#: measured requests: shorter windows carry a visible small-sample bias
#: at saturated sizes (calibrated in docs/validation.md).
_DES_FULL_REPS = 16

#: Cells put through the scalar-vs-vector statistical-equivalence
#: oracle in the full tier (protocol modification numbers); the base
#: protocol plus the all-modifications corner bracket the family.
_EQUIVALENCE_MODS: tuple[tuple[int, ...], ...] = ((), (1, 2, 3, 4))
_EQUIVALENCE_REQUESTS = 4_000
_EQUIVALENCE_REPS = 6

#: Fixed seed for the differential DES runs (results are then
#: reproducible and cacheable; the determinism tests pin the same one).
DES_SEED = 1234


def _record(metrics: MetricsRegistry | None, report: VerifyReport,
            audit: Audit, section: str) -> None:
    report.add(audit.violations, audit.checks, section)
    if metrics is None:
        return
    metrics.counter(
        "repro_verify_checks_total",
        "Verification laws evaluated.",
    ).labels(section=section).inc(audit.checks)
    for violation in audit.violations:
        metrics.counter(
            "repro_verify_violations_total",
            "Verification laws violated.",
        ).labels(law=violation.law,
                 severity=violation.severity.value).inc()


def run_verify(tier: str = "quick",
               metrics: MetricsRegistry | None = None,
               golden_path: Path | str = golden.DEFAULT_CORPUS_PATH,
               sim_engine: str = "auto",
               ) -> VerifyReport:
    """Run every checker at the given tier; never raises on violations.

    ``sim_engine`` selects the DES backend for the MVA-vs-DES tier:
    ``"auto"`` (default) keeps the quick tier on the scalar reference
    engine and runs the full tier's larger samples through the vector
    engine as ``_DES_FULL_REPS`` lockstep replications; ``"scalar"`` /
    ``"vector"`` force one backend for either tier.
    """
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    if sim_engine not in ("auto", "scalar", "vector"):
        raise ValueError("sim_engine must be 'auto', 'scalar' or "
                         f"'vector', got {sim_engine!r}")
    if sim_engine == "auto":
        sim_engine = "vector" if tier == "full" else "scalar"
    started = time.perf_counter()
    report = VerifyReport(tier=tier)
    solver = FixedPointSolver(raise_on_divergence=False)
    protocols = all_combinations()

    # -- invariant audits over the whole family ------------------------
    mva_tasks: list[CellTask] = []
    for spec in protocols:
        for level in SharingLevel:
            workload = appendix_a_workload(level)
            model = CacheMVAModel(workload, protocol=spec)
            subject = f"{spec.label} {level.label}"
            _record(metrics, report,
                    invariants.audit_derived_inputs(model.inputs, subject),
                    "derived-inputs")
            reports = []
            for n in AUDIT_SIZES:
                cell_subject = f"{subject} N={n}"
                system = model.system(n)
                _record(metrics, report,
                        invariants.audit_interference(
                            system.interference, n, cell_subject),
                        "interference")
                state, diag = solver.solve(system)
                cell_report = build_report(system, spec.label,
                                           level.label, state, diag)
                _record(metrics, report,
                        invariants.audit_state(system, state,
                                               cell_subject),
                        "fixed-points")
                _record(metrics, report,
                        invariants.audit_report(cell_report,
                                                cell_subject),
                        "fixed-points")
                _record(metrics, report,
                        invariants.audit_diagnostics(
                            diag, solver.tolerance, cell_subject),
                        "fixed-points")
                _record(metrics, report,
                        invariants.audit_capacity_bound(
                            cell_report, model.inputs, cell_subject),
                        "fixed-points")
                reports.append(cell_report)
                mva_tasks.append(CellTask(
                    protocol=spec, sharing_label=level.label,
                    workload=workload, n=n))
            _record(metrics, report,
                    invariants.audit_sweep_shape(reports, subject),
                    "sweep-shape")

    # -- protocol state-machine model checking -------------------------
    depth = 4 if tier == "full" else 3
    for spec in protocols:
        _record(metrics, report,
                invariants.audit_protocol_machine(spec, spec.label,
                                                  depth=depth),
                "protocol-machine")

    # -- differential oracle: scalar vs batch at zero tolerance --------
    _record(metrics, report, differential.diff_scalar_batch(mva_tasks),
            "engine-parity")

    # -- golden corpus -------------------------------------------------
    _record(metrics, report, golden.compare_corpus(golden_path),
            "golden-corpus")

    # -- differential oracle: MVA vs seeded DES ------------------------
    des_cells: list[tuple[int, int]] = [_DES_QUICK]
    if tier == "full":
        des_cells = [(n, _DES_FULL_REQUESTS) for n in _DES_FULL_SIZES]
    reps = _DES_FULL_REPS if sim_engine == "vector" else 1
    workload = appendix_a_workload(SharingLevel.FIVE_PERCENT)
    for spec in protocols:
        for n, requests in des_cells:
            task = CellTask(protocol=spec, sharing_label="5%",
                            workload=workload, n=n, method="sim",
                            sim_requests=requests // reps,
                            sim_seed=DES_SEED + n,
                            sim_engine=sim_engine, sim_reps=reps)
            _record(metrics, report, differential.diff_mva_des(task),
                    "mva-vs-des")

    # -- differential oracle: scalar vs vector DES (full tier) ---------
    if tier == "full":
        for mods in _EQUIVALENCE_MODS:
            spec = next(p for p in protocols
                        if p.mod_numbers == frozenset(mods))
            task = CellTask(protocol=spec, sharing_label="5%",
                            workload=workload, n=4, method="sim",
                            sim_requests=_EQUIVALENCE_REQUESTS,
                            sim_seed=DES_SEED)
            _record(metrics, report,
                    differential.diff_scalar_vector(
                        task, reps=_EQUIVALENCE_REPS),
                    "engine-equivalence")

    # -- stress corners (full tier): failure isolation -----------------
    if tier == "full":
        audit = Audit(subject="stress-corners")
        stress = run_stress()
        audit.check(stress.isolated, "stress-isolation",
                    "a stress sweep must resolve every cell "
                    "independently (converged or isolated error row)",
                    equation="Section 5")
        audit.check(stress.converged + len(stress.failures)
                    == stress.total, "stress-accounting",
                    "every stress cell must be accounted for",
                    observed=float(stress.converged
                                   + len(stress.failures)),
                    expected=f"== {stress.total}")
        _record(metrics, report, audit, "stress-corners")

    report.elapsed_seconds = time.perf_counter() - started
    return report
