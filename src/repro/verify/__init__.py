"""repro.verify: invariant checker, differential oracle, golden corpus.

The always-on correctness tooling for the three engines (scalar MVA,
batch MVA, DES): paper-level laws as executable audits
(:mod:`repro.verify.invariants`), cross-engine parity oracles
(:mod:`repro.verify.differential`), frozen regression snapshots
(:mod:`repro.verify.golden`), and the tiered run that drives them all
(:func:`repro.verify.runner.run_verify`) behind ``repro verify`` and
``POST /v1/verify``.
"""

from repro.verify.differential import (
    TOLERANCES,
    diff_mva_des,
    diff_scalar_batch,
)
from repro.verify.golden import (
    DEFAULT_CORPUS_PATH,
    compare_corpus,
    generate_corpus,
    write_corpus,
)
from repro.verify.invariants import (
    Audit,
    audit_capacity_bound,
    audit_derived_inputs,
    audit_diagnostics,
    audit_interference,
    audit_protocol_machine,
    audit_report,
    audit_sim_result,
    audit_state,
    audit_sweep_shape,
)
from repro.verify.runner import TIERS, run_verify
from repro.verify.violations import Severity, VerifyReport, Violation

__all__ = [
    "TIERS",
    "TOLERANCES",
    "DEFAULT_CORPUS_PATH",
    "Audit",
    "Severity",
    "VerifyReport",
    "Violation",
    "audit_capacity_bound",
    "audit_derived_inputs",
    "audit_diagnostics",
    "audit_interference",
    "audit_protocol_machine",
    "audit_report",
    "audit_sim_result",
    "audit_state",
    "audit_sweep_shape",
    "compare_corpus",
    "diff_mva_des",
    "diff_scalar_batch",
    "generate_corpus",
    "run_verify",
    "write_corpus",
]
