"""Differential oracle: the three engines must agree on the same cells.

The paper's headline claim is *agreement* -- the cheap MVA numbers track
the expensive detailed model within a few percent everywhere (Tables
4.2/4.3, Section 5).  This module turns that claim into an executable
oracle over our three engines:

* **scalar MVA vs batch MVA** -- same equations, same coefficients, so
  the declared tolerance is *zero*: every exported row field must be
  bit-identical (``==`` on the float, not approximately).  The batch
  engine freezes each lane the sweep it converges and mirrors the
  scalar operand grouping exactly, which is what makes this enforceable.
* **MVA vs DES** -- the Section 4/5 agreement bands from EXPERIMENTS.md:
  speedup within ``MVA_DES_SPEEDUP_BAND`` relative error (the measured
  worst case across all 16 modification combinations is 5.4 %, band
  6.5 %), bus utilization within ``MVA_DES_UBUS_BAND`` absolute.

Disagreements come back as structured
:class:`~repro.verify.violations.Violation` records, never bare asserts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.model import CacheMVAModel
from repro.service.executor import CellTask, SweepExecutor
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.sim.vector import simulate_many
from repro.verify.invariants import Audit, audit_sim_result
from repro.verify.violations import Severity

#: The declared agreement tolerances (documented in
#: docs/verification.md; the MVA-vs-DES bands restate EXPERIMENTS.md
#: and the scalar-vs-vector bands are calibrated in docs/validation.md).
TOLERANCES: dict[str, float] = {
    # Relative error between engines sharing the same equations.
    "scalar-vs-batch": 0.0,
    # |speedup_mva - speedup_des| / speedup_des (worst measured 5.4 %).
    "mva-vs-des-speedup": 0.065,
    # |U_bus_mva - U_bus_des|, absolute (utilizations live in [0, 1]).
    "mva-vs-des-ubus": 0.10,
    # Scalar vs vector DES: the engines draw from different RNG
    # streams, so equivalence is statistical -- across-seed means must
    # agree within a few standard errors (docs/validation.md tabulates
    # the calibration runs behind each band).
    # |mean speedup_scalar - mean speedup_vector| / scalar, relative.
    "scalar-vs-vector-speedup": 0.04,
    # |mean U_bus_scalar - mean U_bus_vector|, absolute.
    "scalar-vs-vector-ubus": 0.04,
    # |mean w_bus_scalar - mean w_bus_vector| / max(scalar, 1), relative
    # to the scalar wait but floored at one cycle (the wait is ~0 off
    # saturation, where a relative band would be meaningless).  Queue
    # waits are the noisiest measure near the knee (worst calibrated
    # divergence 13.3 % across the 16-combo corpus).
    "scalar-vs-vector-wbus": 0.20,
    # |mean interference_scalar - mean interference_vector|, absolute
    # (cache-interference waits are fractions of a cycle).
    "scalar-vs-vector-interference": 0.02,
}

#: Row fields compared between the scalar and batch engines.
_ROW_FIELDS = ("speedup", "u_bus", "w_bus", "cycle_time",
               "processing_power", "error")


def diff_scalar_batch(tasks: Sequence[CellTask],
                      subject: str = "scalar-vs-batch") -> Audit:
    """Run ``tasks`` through both MVA engines; rows must be identical.

    Every cell is evaluated twice -- once per engine, uncached -- and
    the exported :class:`~repro.analysis.grid.GridCell` rows are
    compared field-for-field at zero tolerance.  Cache keys are
    engine-independent in production, so any drift the oracle catches
    here would silently poison shared cache entries; that is why the
    tolerance is zero and not "close enough".
    """
    audit = Audit(subject=subject)
    scalar = SweepExecutor(engine="scalar").run(tasks)
    batch = SweepExecutor(engine="batch").run(tasks)
    for task, s_cell, b_cell in zip(tasks, scalar.cells, batch.cells):
        cell_subject = (f"{task.protocol.label} {task.sharing_label} "
                        f"N={task.n}")
        s_row, b_row = s_cell.as_row(), b_cell.as_row()
        for name in _ROW_FIELDS:
            s_value, b_value = s_row[name], b_row[name]
            audit.check(
                s_value == b_value, "engine-parity",
                f"{cell_subject}: scalar and batch disagree on {name} "
                f"(scalar {s_value!r}, batch {b_value!r})",
                observed=(b_value if isinstance(b_value, float) else None),
                expected=f"== {s_value!r} (zero tolerance)",
                equation="Section 3.2",
                field=name, scalar=s_value, batch=b_value)
    audit.check(len(scalar.cells) == len(batch.cells) == len(tasks),
                "engine-parity",
                "both engines must return one row per task",
                observed=float(len(batch.cells)),
                expected=f"== {len(tasks)}")
    return audit


def diff_mva_des(task: CellTask,
                 speedup_band: float | None = None,
                 ubus_band: float | None = None) -> Audit:
    """One MVA-vs-DES parity cell (the Tables 4.2/4.3 experiment).

    Solves the cell analytically (scalar engine, recovery enabled) and
    runs the seeded discrete-event simulator on the same workload,
    protocol and architecture, then checks the relative speedup error
    against the declared band.  The DES is the arbiter of record: the
    violation reports the MVA value as observed and the simulated value
    as expected.
    """
    speedup_band = (TOLERANCES["mva-vs-des-speedup"]
                    if speedup_band is None else speedup_band)
    ubus_band = (TOLERANCES["mva-vs-des-ubus"]
                 if ubus_band is None else ubus_band)
    subject = (f"{task.protocol.label} {task.sharing_label} "
               f"N={task.n} [mva-vs-des]")
    audit = Audit(subject=subject)

    model = CacheMVAModel(task.workload, task.protocol, arch=task.arch,
                          solver=task.solver)
    report = model.solve(task.n, recovery=True)
    config = SimulationConfig(
        n_processors=task.n, workload=task.workload,
        protocol=task.protocol, arch=task.arch, seed=task.sim_seed,
        measured_requests=task.sim_requests)
    # ``sim_engine="vector"`` folds ``sim_reps`` lockstep replications
    # into one aggregate whose CI is the across-seed band -- the
    # multi-seed form of this experiment at the same total sample size.
    result = simulate(config, engine=task.sim_engine, reps=task.sim_reps)

    # While the DES output is in hand, hold it to the sim-stats laws
    # too (ranges, the speedup identity, the contention-free floor).
    audit.merge(audit_sim_result(result, tau=task.workload.tau,
                                 t_supply=task.arch.t_supply,
                                 subject=subject))

    audit.check(result.speedup > 0.0, "sim-measured",
                "the simulator must measure a positive speedup",
                observed=result.speedup, expected="> 0")
    if result.speedup > 0.0:
        rel_error = abs(report.speedup - result.speedup) / result.speedup
        audit.check(rel_error <= speedup_band, "mva-des-speedup",
                    f"MVA speedup departs from DES by {rel_error:.2%}, "
                    f"past the {speedup_band:.1%} agreement band",
                    observed=report.speedup,
                    expected=(f"within {speedup_band:.1%} of "
                              f"{result.speedup:.6g}"),
                    equation="Tables 4.2/4.3",
                    rel_error=rel_error, band=speedup_band,
                    seed=task.sim_seed, requests=task.sim_requests,
                    engine=task.sim_engine, reps=task.sim_reps)
    ubus_error = abs(report.u_bus - result.u_bus)
    audit.check(ubus_error <= ubus_band, "mva-des-ubus",
                f"MVA bus utilization departs from DES by "
                f"{ubus_error:.3f}, past the {ubus_band} band",
                observed=report.u_bus,
                expected=f"within {ubus_band} of {result.u_bus:.6g}",
                equation="eq. (7)", severity=Severity.WARNING,
                abs_error=ubus_error, band=ubus_band)
    return audit


def diff_scalar_vector(task: CellTask, reps: int = 8) -> Audit:
    """Statistical-equivalence oracle between the scalar and vector DES.

    Runs the same cell through both simulators over the same ``reps``
    seeds (``task.sim_seed + r``) and compares the across-seed means of
    the measured quantities.  The engines consume *different* uniform
    streams per seed -- the scalar simulator spawns one PCG64 child per
    component while the vector engine serves one buffered stream per
    replication -- so per-seed estimates are independent samples of the
    same law, never bit-equal; the contract is that the across-seed
    means agree within the ``scalar-vs-vector-*`` bands (a few standard
    errors at these sample sizes; docs/validation.md tabulates the
    calibration).  A systematic divergence -- a missed snoop, a
    mis-ordered grant -- shifts a mean by far more than a band and is
    what this oracle exists to catch.
    """
    if reps < 2:
        raise ValueError(f"reps must be >= 2 for a meaningful band, "
                         f"got {reps!r}")
    subject = (f"{task.protocol.label} {task.sharing_label} "
               f"N={task.n} [scalar-vs-vector]")
    audit = Audit(subject=subject)
    seeds = [task.sim_seed + r for r in range(reps)]

    def config(seed: int) -> SimulationConfig:
        return SimulationConfig(
            n_processors=task.n, workload=task.workload,
            protocol=task.protocol, arch=task.arch, seed=seed,
            measured_requests=task.sim_requests)

    scalar = [simulate(config(seed)) for seed in seeds]
    vector = simulate_many(config(seeds[0]), reps=reps, seeds=seeds)

    def mean(values: Sequence[float]) -> float:
        return sum(values) / len(values)

    s_speedup = mean([r.speedup for r in scalar])
    v_speedup = float(vector.speedup.mean())
    band = TOLERANCES["scalar-vs-vector-speedup"]
    rel = abs(s_speedup - v_speedup) / s_speedup
    audit.check(rel <= band, "scalar-vector-speedup",
                f"vector-engine mean speedup departs from scalar by "
                f"{rel:.2%}, past the {band:.1%} equivalence band",
                observed=v_speedup,
                expected=f"within {band:.1%} of {s_speedup:.6g}",
                rel_error=rel, band=band, reps=reps,
                requests=task.sim_requests, seed=task.sim_seed)

    s_ubus = mean([r.u_bus for r in scalar])
    v_ubus = float(vector.u_bus.mean())
    band = TOLERANCES["scalar-vs-vector-ubus"]
    err = abs(s_ubus - v_ubus)
    audit.check(err <= band, "scalar-vector-ubus",
                f"vector-engine mean U_bus departs from scalar by "
                f"{err:.4f}, past the {band} band",
                observed=v_ubus, expected=f"within {band} of {s_ubus:.6g}",
                abs_error=err, band=band, reps=reps)

    s_wbus = mean([r.w_bus for r in scalar])
    v_wbus = float(vector.w_bus.mean())
    band = TOLERANCES["scalar-vs-vector-wbus"]
    rel = abs(s_wbus - v_wbus) / max(s_wbus, 1.0)
    audit.check(rel <= band, "scalar-vector-wbus",
                f"vector-engine mean w_bus departs from scalar by "
                f"{rel:.2%} (of max(w_bus, 1)), past the {band:.0%} band",
                observed=v_wbus,
                expected=f"within {band:.0%} of {s_wbus:.6g}",
                rel_error=rel, band=band, reps=reps)

    s_intf = mean([r.mean_interference_wait for r in scalar])
    v_intf = float(vector.mean_interference_wait.mean())
    band = TOLERANCES["scalar-vs-vector-interference"]
    err = abs(s_intf - v_intf)
    audit.check(err <= band, "scalar-vector-interference",
                f"vector-engine mean cache-interference wait departs "
                f"from scalar by {err:.4f} cycles, past the {band} band",
                observed=v_intf, expected=f"within {band} of {s_intf:.6g}",
                abs_error=err, band=band, reps=reps)

    # Per-replication sanity: every vector row must satisfy the same
    # sim-stats laws the scalar runs do.
    for rep in range(reps):
        row = vector.replication(rep)
        audit.merge(audit_sim_result(
            row, tau=task.workload.tau, t_supply=task.arch.t_supply,
            subject=f"{subject} rep={rep}"))
    return audit
