"""Differential oracle: the three engines must agree on the same cells.

The paper's headline claim is *agreement* -- the cheap MVA numbers track
the expensive detailed model within a few percent everywhere (Tables
4.2/4.3, Section 5).  This module turns that claim into an executable
oracle over our three engines:

* **scalar MVA vs batch MVA** -- same equations, same coefficients, so
  the declared tolerance is *zero*: every exported row field must be
  bit-identical (``==`` on the float, not approximately).  The batch
  engine freezes each lane the sweep it converges and mirrors the
  scalar operand grouping exactly, which is what makes this enforceable.
* **MVA vs DES** -- the Section 4/5 agreement bands from EXPERIMENTS.md:
  speedup within ``MVA_DES_SPEEDUP_BAND`` relative error (the measured
  worst case across all 16 modification combinations is 5.4 %, band
  6.5 %), bus utilization within ``MVA_DES_UBUS_BAND`` absolute.

Disagreements come back as structured
:class:`~repro.verify.violations.Violation` records, never bare asserts.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.model import CacheMVAModel
from repro.service.executor import CellTask, SweepExecutor
from repro.sim.config import SimulationConfig
from repro.sim.system import simulate
from repro.verify.invariants import Audit, audit_sim_result
from repro.verify.violations import Severity

#: The declared agreement tolerances (documented in
#: docs/verification.md; the MVA-vs-DES bands restate EXPERIMENTS.md).
TOLERANCES: dict[str, float] = {
    # Relative error between engines sharing the same equations.
    "scalar-vs-batch": 0.0,
    # |speedup_mva - speedup_des| / speedup_des (worst measured 5.4 %).
    "mva-vs-des-speedup": 0.065,
    # |U_bus_mva - U_bus_des|, absolute (utilizations live in [0, 1]).
    "mva-vs-des-ubus": 0.10,
}

#: Row fields compared between the scalar and batch engines.
_ROW_FIELDS = ("speedup", "u_bus", "w_bus", "cycle_time",
               "processing_power", "error")


def diff_scalar_batch(tasks: Sequence[CellTask],
                      subject: str = "scalar-vs-batch") -> Audit:
    """Run ``tasks`` through both MVA engines; rows must be identical.

    Every cell is evaluated twice -- once per engine, uncached -- and
    the exported :class:`~repro.analysis.grid.GridCell` rows are
    compared field-for-field at zero tolerance.  Cache keys are
    engine-independent in production, so any drift the oracle catches
    here would silently poison shared cache entries; that is why the
    tolerance is zero and not "close enough".
    """
    audit = Audit(subject=subject)
    scalar = SweepExecutor(engine="scalar").run(tasks)
    batch = SweepExecutor(engine="batch").run(tasks)
    for task, s_cell, b_cell in zip(tasks, scalar.cells, batch.cells):
        cell_subject = (f"{task.protocol.label} {task.sharing_label} "
                        f"N={task.n}")
        s_row, b_row = s_cell.as_row(), b_cell.as_row()
        for name in _ROW_FIELDS:
            s_value, b_value = s_row[name], b_row[name]
            audit.check(
                s_value == b_value, "engine-parity",
                f"{cell_subject}: scalar and batch disagree on {name} "
                f"(scalar {s_value!r}, batch {b_value!r})",
                observed=(b_value if isinstance(b_value, float) else None),
                expected=f"== {s_value!r} (zero tolerance)",
                equation="Section 3.2",
                field=name, scalar=s_value, batch=b_value)
    audit.check(len(scalar.cells) == len(batch.cells) == len(tasks),
                "engine-parity",
                "both engines must return one row per task",
                observed=float(len(batch.cells)),
                expected=f"== {len(tasks)}")
    return audit


def diff_mva_des(task: CellTask,
                 speedup_band: float | None = None,
                 ubus_band: float | None = None) -> Audit:
    """One MVA-vs-DES parity cell (the Tables 4.2/4.3 experiment).

    Solves the cell analytically (scalar engine, recovery enabled) and
    runs the seeded discrete-event simulator on the same workload,
    protocol and architecture, then checks the relative speedup error
    against the declared band.  The DES is the arbiter of record: the
    violation reports the MVA value as observed and the simulated value
    as expected.
    """
    speedup_band = (TOLERANCES["mva-vs-des-speedup"]
                    if speedup_band is None else speedup_band)
    ubus_band = (TOLERANCES["mva-vs-des-ubus"]
                 if ubus_band is None else ubus_band)
    subject = (f"{task.protocol.label} {task.sharing_label} "
               f"N={task.n} [mva-vs-des]")
    audit = Audit(subject=subject)

    model = CacheMVAModel(task.workload, task.protocol, arch=task.arch,
                          solver=task.solver)
    report = model.solve(task.n, recovery=True)
    result = simulate(SimulationConfig(
        n_processors=task.n, workload=task.workload,
        protocol=task.protocol, arch=task.arch, seed=task.sim_seed,
        measured_requests=task.sim_requests))

    # While the DES output is in hand, hold it to the sim-stats laws
    # too (ranges, the speedup identity, the contention-free floor).
    audit.merge(audit_sim_result(result, tau=task.workload.tau,
                                 t_supply=task.arch.t_supply,
                                 subject=subject))

    audit.check(result.speedup > 0.0, "sim-measured",
                "the simulator must measure a positive speedup",
                observed=result.speedup, expected="> 0")
    if result.speedup > 0.0:
        rel_error = abs(report.speedup - result.speedup) / result.speedup
        audit.check(rel_error <= speedup_band, "mva-des-speedup",
                    f"MVA speedup departs from DES by {rel_error:.2%}, "
                    f"past the {speedup_band:.1%} agreement band",
                    observed=report.speedup,
                    expected=(f"within {speedup_band:.1%} of "
                              f"{result.speedup:.6g}"),
                    equation="Tables 4.2/4.3",
                    rel_error=rel_error, band=speedup_band,
                    seed=task.sim_seed, requests=task.sim_requests)
    ubus_error = abs(report.u_bus - result.u_bus)
    audit.check(ubus_error <= ubus_band, "mva-des-ubus",
                f"MVA bus utilization departs from DES by "
                f"{ubus_error:.3f}, past the {ubus_band} band",
                observed=report.u_bus,
                expected=f"within {ubus_band} of {result.u_bus:.6g}",
                equation="eq. (7)", severity=Severity.WARNING,
                abs_error=ubus_error, band=ubus_band)
    return audit
