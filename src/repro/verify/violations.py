"""Structured verification outcomes: :class:`Violation` and the report.

Every check in :mod:`repro.verify` reports failures as data, not bare
asserts: a :class:`Violation` names the *law* that was broken (a stable
identifier listed in ``docs/verification.md``), the subject that broke
it, the observed value against the expected bound, and the paper
equation the law comes from.  A :class:`VerifyReport` aggregates the
violations of one verification run together with how many checks were
performed, so "0 violations" is meaningful (it always comes with a
non-zero check count).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a violation is.

    ``ERROR`` fails the run (exit code 1, CI red); ``WARNING`` is
    surfaced but does not fail -- used for the documented soft spots of
    the approximate MVA (e.g. the bounded monotonicity dips in deep
    saturation, EXPERIMENTS.md E1).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Violation:
    """One broken law, as data.

    ``law`` is the stable identifier from the invariant catalog
    (``docs/verification.md``); ``subject`` names the audited object
    ("write-once 5% N=10 [mva]"); ``observed``/``expected`` record the
    value against the bound it broke; ``equation`` points back at the
    paper ("eq. (7)", "Appendix B"); ``context`` carries any structured
    extras (per-field diffs, tolerances).
    """

    law: str
    subject: str
    message: str
    severity: Severity = Severity.ERROR
    observed: float | None = None
    expected: str | None = None
    equation: str | None = None
    context: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One line for CLI output and logs."""
        parts = [f"[{self.severity.value}] {self.law}: {self.subject}: "
                 f"{self.message}"]
        if self.observed is not None:
            parts.append(f" (observed {self.observed:.6g}"
                         + (f", expected {self.expected}" if self.expected
                            else "") + ")")
        elif self.expected:
            parts.append(f" (expected {self.expected})")
        if self.equation:
            parts.append(f" [{self.equation}]")
        return "".join(parts)

    def as_dict(self) -> dict[str, Any]:
        return {
            "law": self.law,
            "subject": self.subject,
            "message": self.message,
            "severity": self.severity.value,
            "observed": self.observed,
            "expected": self.expected,
            "equation": self.equation,
            "context": self.context,
        }


@dataclass
class VerifyReport:
    """Outcome of one verification run.

    ``checks`` counts every individual law evaluation performed (so an
    all-green report still proves work happened); ``violations`` holds
    what failed.  ``ok`` is the CI-facing verdict: no *error*-severity
    violations (warnings are tolerated and listed).
    """

    tier: str = "quick"
    checks: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: Section label -> number of checks, for the report breakdown.
    sections: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def add(self, violations: list[Violation], checks: int,
            section: str) -> None:
        """Fold one check batch into the report."""
        self.violations.extend(violations)
        self.checks += checks
        self.sections[section] = self.sections.get(section, 0) + checks

    @property
    def errors(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Violation]:
        return [v for v in self.violations
                if v.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """No error-severity violations (and some checks actually ran)."""
        return self.checks > 0 and not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def text(self) -> str:
        """Human-readable report for the CLI."""
        lines = [f"verify [{self.tier}]: {self.checks} checks, "
                 f"{len(self.errors)} violations, "
                 f"{len(self.warnings)} warnings "
                 f"({self.elapsed_seconds:.2f}s)"]
        for section, count in sorted(self.sections.items()):
            lines.append(f"  {section}: {count} checks")
        for violation in self.violations:
            lines.append(f"  - {violation.describe()}")
        lines.append("verdict: " + ("ok" if self.ok else "FAILED"))
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "tier": self.tier,
            "ok": self.ok,
            "checks": self.checks,
            "sections": dict(sorted(self.sections.items())),
            "violations": [v.as_dict() for v in self.violations],
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2)
