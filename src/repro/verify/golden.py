"""Golden-corpus regression store: frozen snapshots of solved cells.

The corpus freezes the scalar engine's answers for every one of the 16
modification combinations x the three Appendix-A sharing levels x the
Table-4.1 corner sizes (1, 10, 20, 100 -- the N=1 degenerate case, the
knee, past the knee, and deep saturation).  It is committed at
``src/repro/verify/golden_corpus.json`` and compared on every verify
run, so *any* numerical drift -- an edited equation, a reordered
reduction, a changed default -- is caught against values a human
reviewed, not against the code's own current output.

Update workflow (deliberate, reviewed):

    repro verify --update-golden        # regenerate the corpus
    git diff src/repro/verify/golden_corpus.json   # review the drift
    # commit together with the change that explains it

Regeneration is reproducible: the corpus is a pure function of the
model code (scalar solves from cold starts, no seeds involved), so two
runs of ``--update-golden`` on the same tree produce byte-identical
files.  Comparison uses ``FLOAT_RTOL`` (1e-9) rather than exact
equality only to tolerate cross-platform libm differences; any real
model change moves values by orders of magnitude more.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.core.model import CacheMVAModel
from repro.protocols.modifications import all_combinations
from repro.verify.invariants import Audit
from repro.workload.parameters import SharingLevel, appendix_a_workload

#: Bump when the corpus layout (not the values) changes.
CORPUS_SCHEMA_VERSION = 1

#: The Table-4.1 corner sizes frozen in the corpus.
GOLDEN_SIZES: tuple[int, ...] = (1, 10, 20, 100)

#: Relative tolerance for float comparison against the corpus.
FLOAT_RTOL = 1e-9

#: The committed corpus file (package data, so the CLI and service can
#: verify from any working directory).
DEFAULT_CORPUS_PATH = Path(__file__).parent / "golden_corpus.json"

#: The float measures frozen per cell.
_MEASURES = ("speedup", "u_bus", "w_bus", "w_mem", "cycle_time",
             "processing_power", "q_bus")


def _cell_id(protocol: str, sharing: str, n: int) -> str:
    return f"{protocol}|{sharing}|{n}"


def generate_corpus() -> dict[str, Any]:
    """Solve the whole corpus grid fresh (scalar engine, cold starts)."""
    cells: list[dict[str, Any]] = []
    for spec in all_combinations():
        for level in SharingLevel:
            model = CacheMVAModel(appendix_a_workload(level),
                                  protocol=spec)
            for n in GOLDEN_SIZES:
                report = model.solve(n, recovery=True)
                cells.append({
                    "protocol": spec.label,
                    "sharing": level.label,
                    "n": n,
                    "speedup": report.speedup,
                    "u_bus": report.u_bus,
                    "w_bus": report.w_bus,
                    "w_mem": report.w_mem,
                    "cycle_time": report.cycle_time,
                    "processing_power": report.processing_power,
                    "q_bus": report.q_bus,
                    "iterations": report.iterations,
                    "converged": report.converged,
                })
    return {
        "schema_version": CORPUS_SCHEMA_VERSION,
        "engine": "scalar",
        "sizes": list(GOLDEN_SIZES),
        "cells": cells,
    }


def write_corpus(path: Path | str = DEFAULT_CORPUS_PATH) -> Path:
    """Regenerate the corpus file (the ``--update-golden`` flow)."""
    path = Path(path)
    corpus = generate_corpus()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(corpus, indent=1, sort_keys=True) + "\n")
    return path


def load_corpus(path: Path | str = DEFAULT_CORPUS_PATH) -> dict[str, Any]:
    return json.loads(Path(path).read_text())


def _close(observed: float, frozen: float, rtol: float) -> bool:
    return math.isclose(observed, frozen, rel_tol=rtol, abs_tol=rtol)


def compare_corpus(path: Path | str = DEFAULT_CORPUS_PATH,
                   rtol: float = FLOAT_RTOL) -> Audit:
    """Re-solve the corpus grid and diff it against the frozen file."""
    audit = Audit(subject="golden-corpus")
    path = Path(path)
    if not audit.check(path.exists(), "golden-missing",
                       f"no golden corpus at {path}; run "
                       "`repro verify --update-golden` and commit it"):
        return audit
    frozen = load_corpus(path)
    if not audit.check(
            frozen.get("schema_version") == CORPUS_SCHEMA_VERSION,
            "golden-schema",
            f"corpus schema {frozen.get('schema_version')!r} does not "
            f"match the code's {CORPUS_SCHEMA_VERSION}; regenerate with "
            "`repro verify --update-golden`"):
        return audit

    frozen_cells = {_cell_id(c["protocol"], c["sharing"], c["n"]): c
                    for c in frozen["cells"]}
    current = generate_corpus()
    current_ids = set()
    for cell in current["cells"]:
        cid = _cell_id(cell["protocol"], cell["sharing"], cell["n"])
        current_ids.add(cid)
        if not audit.check(cid in frozen_cells, "golden-cell-missing",
                           f"cell {cid} is not in the committed corpus; "
                           "regenerate with `repro verify "
                           "--update-golden`"):
            continue
        ref = frozen_cells[cid]
        for measure in _MEASURES:
            audit.check(
                _close(cell[measure], ref[measure], rtol),
                "golden-drift",
                f"{cid}: {measure} drifted from the committed golden "
                "value",
                observed=cell[measure],
                expected=f"== {ref[measure]!r} (rtol {rtol:g})",
                measure=measure, cell=cid)
        audit.check(cell["converged"] == ref["converged"],
                    "golden-drift",
                    f"{cid}: convergence flag changed "
                    f"({ref['converged']} -> {cell['converged']})",
                    cell=cid, measure="converged")
    for cid in frozen_cells:
        audit.check(cid in current_ids, "golden-cell-extra",
                    f"committed corpus has cell {cid} the code no "
                    "longer produces; regenerate with `repro verify "
                    "--update-golden`")
    return audit
